//! Connection-scaling sweep: how many *live* client connections can one
//! `gdpr-server` hold, and what does each one cost? The sweep opens N
//! mostly-idle connections (timing connect-to-first-response for each),
//! reads the server's resident-set growth per connection, then drives a
//! hot pipelined subset for throughput and latency — on both the reactor
//! and the thread-per-connection transport.
//!
//! The server runs as a subprocess so its RSS is measured in isolation
//! (and so 10k descriptors on each side fit under one process's limit).
//! Build it first:
//!
//! ```text
//! cargo build --release -p gdpr-server
//! cargo run -p bench --release --bin conn_scaling \
//!     [conns=100,1000,10000] [threadscap=1000] [hot=32] [hotops=4096] \
//!     [latops=256] [transports=reactor,threads]
//! ```
//!
//! `threadscap` bounds the thread-per-connection sweep (10k OS threads on
//! a small host is an eviction, not a measurement). Emits a human table
//! and writes `BENCH_conn_scaling.json`; `host_cores` is recorded — on a
//! single-core container the hot-subset numbers show parity, not
//! parallel speedup, and the RSS-per-connection axis is the headline.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use resp::encode::encode_frame;
use resp::Frame;

const PING: &[u8] = b"*1\r\n$4\r\nPING\r\n";
const PONG: &[u8] = b"+PONG\r\n";
const OK: &[u8] = b"+OK\r\n";
const BATCH: usize = 16;

struct Cell {
    transport: &'static str,
    connections: usize,
    accept_p50_micros: u64,
    accept_p99_micros: u64,
    rss_base_bytes: u64,
    rss_per_conn_bytes: u64,
    hot_ops_per_sec: f64,
    hot_p50_micros: u64,
    hot_p99_micros: u64,
    errors: u64,
}

fn arg_str<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter().find_map(|a| a.strip_prefix(&format!("{key}=")))
}

fn arg_list(args: &[String], key: &str, default: &[usize]) -> Vec<usize> {
    arg_str(args, key)
        .map(|v| v.split(',').filter_map(|n| n.parse().ok()).collect())
        .unwrap_or_else(|| default.to_vec())
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// The server binary sits next to this bench binary in `target/release`;
/// `GDPR_SERVER_BIN` overrides the path.
fn server_binary() -> std::path::PathBuf {
    if let Ok(path) = std::env::var("GDPR_SERVER_BIN") {
        return path.into();
    }
    let mut path = std::env::current_exe().expect("current_exe");
    path.set_file_name("gdpr-server");
    if !path.exists() {
        panic!(
            "server binary not found at {} — run `cargo build --release -p gdpr-server` first \
             (or set GDPR_SERVER_BIN)",
            path.display()
        );
    }
    path
}

/// Spawn a raw-engine server and return (child, addr) once it reports the
/// port it bound. A drain thread keeps consuming the child's stdout so it
/// never blocks on a full pipe.
fn spawn_server(transport: &str, maxconns: usize) -> (Child, String) {
    let mut child = Command::new(server_binary())
        .args([
            "addr=127.0.0.1:0",
            "compliance=0",
            "fsync=none",
            "aof=none",
            "readtimeout=600",
            &format!("transport={transport}"),
            &format!("maxconns={maxconns}"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn gdpr-server");
    let stdout = child.stdout.take().expect("child stdout");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
            if let Some(rest) = line.split("listening on ").nth(1) {
                if let Some(addr) = rest.split(" (").next() {
                    let _ = tx.send(addr.trim().to_string());
                }
            }
            line.clear();
        }
    });
    let addr = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("server did not report its address");
    (child, addr)
}

/// Resident set of the server process, in bytes (`VmRSS` from procfs).
fn resident_bytes(pid: u32) -> u64 {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).expect("read proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|l| l.trim().strip_suffix("kB"))
        .and_then(|l| l.trim().parse::<u64>().ok())
        .expect("VmRSS line")
        * 1024
}

fn roundtrip(stream: &mut TcpStream, request: &[u8], reply_len: usize) -> std::io::Result<()> {
    stream.write_all(request)?;
    let mut reply = vec![0u8; reply_len];
    stream.read_exact(&mut reply)
}

fn run_cell(transport: &'static str, n: usize, hot: usize, hotops: usize, latops: usize) -> Cell {
    // Thread-per-connection needs headroom above the sweep point; the
    // reactor cell runs with the cap off, its shipping default.
    let maxconns = if transport == "reactor" { 0 } else { n + 64 };
    let (mut child, addr) = spawn_server(transport, maxconns);
    std::thread::sleep(Duration::from_millis(100));
    let rss_base = resident_bytes(child.id());

    // Idle phase: open N connections, timing connect-to-first-response
    // (one PING each), then hold them all open.
    let mut errors = 0u64;
    let mut sockets = Vec::with_capacity(n);
    let mut accept_micros = Vec::with_capacity(n);
    for _ in 0..n {
        let started = Instant::now();
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        if roundtrip(&mut stream, PING, PONG.len()).is_err() {
            errors += 1;
            continue;
        }
        accept_micros.push(started.elapsed().as_micros() as u64);
        sockets.push(stream);
    }
    std::thread::sleep(Duration::from_millis(200));
    let rss_idle = resident_bytes(child.id());
    let rss_per_conn = rss_idle.saturating_sub(rss_base) / sockets.len().max(1) as u64;
    accept_micros.sort_unstable();

    // Hot phase: a pipelined subset hammers SETs while the rest stay
    // idle. Single-op roundtrips sample latency; full batches of
    // `BATCH` measure throughput.
    let hot = hot.min(sockets.len());
    let started = Instant::now();
    let mut total_ops = 0u64;
    let mut hot_micros = Vec::new();
    let workers: Vec<_> = sockets
        .drain(..hot)
        .enumerate()
        .map(|(t, mut stream)| {
            std::thread::spawn(move || {
                let set = encode_frame(&Frame::command(["SET", &format!("hot:{t}"), "v"]));
                let batch: Vec<u8> = set.repeat(BATCH);
                let mut micros = Vec::with_capacity(latops);
                let mut ops = 0u64;
                let mut errors = 0u64;
                for _ in 0..latops {
                    let begun = Instant::now();
                    match roundtrip(&mut stream, &set, OK.len()) {
                        Ok(()) => {
                            ops += 1;
                            micros.push(begun.elapsed().as_micros() as u64);
                        }
                        Err(_) => errors += 1,
                    }
                }
                for _ in 0..hotops / BATCH {
                    match roundtrip(&mut stream, &batch, OK.len() * BATCH) {
                        Ok(()) => ops += BATCH as u64,
                        Err(_) => errors += 1,
                    }
                }
                (micros, ops, errors, stream)
            })
        })
        .collect();
    for worker in workers {
        let (micros, ops, errs, stream) = worker.join().expect("hot worker");
        hot_micros.extend(micros);
        total_ops += ops;
        errors += errs;
        sockets.push(stream); // keep it open until the cell ends
    }
    let hot_secs = started.elapsed().as_secs_f64();
    hot_micros.sort_unstable();

    drop(sockets);
    let mut control = TcpStream::connect(&addr).expect("connect control");
    let _ = roundtrip(&mut control, b"*1\r\n$8\r\nSHUTDOWN\r\n", OK.len());
    drop(control);
    child.wait().expect("server exit");

    Cell {
        transport,
        connections: n,
        accept_p50_micros: percentile(&accept_micros, 0.50),
        accept_p99_micros: percentile(&accept_micros, 0.99),
        rss_base_bytes: rss_base,
        rss_per_conn_bytes: rss_per_conn,
        hot_ops_per_sec: total_ops as f64 / hot_secs.max(f64::EPSILON),
        hot_p50_micros: percentile(&hot_micros, 0.50),
        hot_p99_micros: percentile(&hot_micros, 0.99),
        errors,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let conns = arg_list(&args, "conns", &[100, 1_000, 10_000]);
    let threads_cap = arg_list(&args, "threadscap", &[1_000])[0];
    let hot = arg_list(&args, "hot", &[32])[0];
    let hotops = arg_list(&args, "hotops", &[4_096])[0];
    let latops = arg_list(&args, "latops", &[256])[0];
    let transports: Vec<&'static str> = arg_str(&args, "transports")
        .unwrap_or("reactor,threads")
        .split(',')
        .filter_map(|t| match t {
            "reactor" => Some("reactor"),
            "threads" => Some("threads"),
            other => {
                eprintln!("  ignoring unknown transport {other:?}");
                None
            }
        })
        .collect();

    // The bench side holds N client sockets too.
    let _ = polling::raise_nofile_limit(65_536);
    let cores = bench::host_cores();
    println!(
        "conn_scaling — idle-heavy connection sweep, conns={conns:?} (threads transport capped \
         at {threads_cap}), hot={hot}, hotops={hotops}, cores={cores}"
    );

    let mut cells = Vec::new();
    for transport in &transports {
        for &n in &conns {
            if *transport == "threads" && n > threads_cap {
                println!("  threads   conns={n:>6}  skipped (threadscap={threads_cap})");
                continue;
            }
            let cell = run_cell(transport, n, hot, hotops, latops);
            println!(
                "  {:<8}  conns={:>6}  accept p50/p99 {:>5}/{:>6} µs   rss/conn {:>7} B   \
                 hot {:>8.0} ops/s   p99 {:>5} µs   errors {}",
                cell.transport,
                cell.connections,
                cell.accept_p50_micros,
                cell.accept_p99_micros,
                cell.rss_per_conn_bytes,
                cell.hot_ops_per_sec,
                cell.hot_p99_micros,
                cell.errors,
            );
            cells.push(cell);
        }
    }

    // Headline ratio: reactor vs threads residency per connection at the
    // largest point both transports ran.
    let pairs: Vec<(u64, u64, usize)> = cells
        .iter()
        .filter(|c| c.transport == "reactor")
        .filter_map(|r| {
            cells
                .iter()
                .find(|t| t.transport == "threads" && t.connections == r.connections)
                .map(|t| (r.rss_per_conn_bytes, t.rss_per_conn_bytes, r.connections))
        })
        .collect();
    if let Some((reactor_rss, threads_rss, at)) = pairs.iter().max_by_key(|p| p.2) {
        println!(
            "\n  rss/conn at {at} connections: reactor {reactor_rss} B vs threads {threads_rss} B \
             ({:.1}x)",
            *threads_rss as f64 / (*reactor_rss).max(1) as f64
        );
    }

    let json = render_json(hot, hotops, &cells);
    std::fs::write("BENCH_conn_scaling.json", &json).expect("write BENCH_conn_scaling.json");
    println!("wrote BENCH_conn_scaling.json ({} cells)", cells.len());
}

fn render_json(hot: usize, hotops: usize, cells: &[Cell]) -> String {
    let mut out = bench::json_envelope("conn_scaling");
    out.push_str("  \"transport\": \"tcp-loopback\",\n");
    out.push_str("  \"policy\": \"none\",\n");
    out.push_str(&format!("  \"hot_connections\": {hot},\n"));
    out.push_str(&format!("  \"hot_ops_per_connection\": {hotops},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"transport\": \"{}\", \"connections\": {}, \
             \"accept_to_first_response_p50_micros\": {}, \
             \"accept_to_first_response_p99_micros\": {}, \
             \"rss_base_bytes\": {}, \"rss_per_connection_bytes\": {}, \
             \"hot_ops_per_sec\": {:.1}, \"hot_p50_micros\": {}, \"hot_p99_micros\": {}, \
             \"errors\": {}}}{}\n",
            cell.transport,
            cell.connections,
            cell.accept_p50_micros,
            cell.accept_p99_micros,
            cell.rss_base_bytes,
            cell.rss_per_conn_bytes,
            cell.hot_ops_per_sec,
            cell.hot_p50_micros,
            cell.hot_p99_micros,
            cell.errors,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
