//! Bounded ring of the slowest requests, Redis-`SLOWLOG` style.
//!
//! The dispatcher times every request; when a request's duration meets
//! the configured threshold it is pushed here with a redacted command
//! representation. The ring keeps only the most recent `max_len`
//! entries; ids are monotonic for the life of the process so a client
//! polling `SLOWLOG GET` can detect entries it has already seen even
//! across a `RESET` (reset clears entries, not the id counter — matching
//! Redis).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Cap on each captured argument's length; longer args are truncated
/// with a `... (N more bytes)` marker, as Redis does, so one giant SET
/// cannot bloat the ring.
const MAX_ARG_LEN: usize = 128;
/// Cap on captured argument count per entry.
const MAX_ARGS: usize = 16;

/// One slow request.
#[derive(Debug, Clone)]
pub struct SlowlogEntry {
    /// Monotonic id, unique for the life of the process.
    pub id: u64,
    /// Unix timestamp (seconds) when the request finished.
    pub unix_secs: u64,
    /// Request duration in microseconds.
    pub duration_micros: u64,
    /// Command name plus (truncated) arguments.
    pub command: Vec<String>,
}

/// Thread-safe bounded slow-request log.
///
/// The threshold is signed, Redis-style: negative disables logging
/// entirely, zero logs every request, positive logs requests that take
/// at least that many microseconds.
#[derive(Debug)]
pub struct Slowlog {
    threshold_micros: AtomicI64,
    next_id: AtomicU64,
    max_len: usize,
    ring: Mutex<VecDeque<SlowlogEntry>>,
}

impl Slowlog {
    /// Create a slowlog with the given threshold (µs, negative =
    /// disabled) holding at most `max_len` entries.
    #[must_use]
    pub fn new(threshold_micros: i64, max_len: usize) -> Self {
        Slowlog {
            threshold_micros: AtomicI64::new(threshold_micros),
            next_id: AtomicU64::new(0),
            max_len: max_len.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Current threshold in microseconds (negative = disabled).
    #[must_use]
    pub fn threshold_micros(&self) -> i64 {
        self.threshold_micros.load(Ordering::Relaxed)
    }

    /// Change the threshold at runtime.
    pub fn set_threshold_micros(&self, micros: i64) {
        self.threshold_micros.store(micros, Ordering::Relaxed);
    }

    /// Maximum number of retained entries.
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Cheap hot-path check: should a request of this duration be logged?
    #[must_use]
    pub fn should_log(&self, duration_micros: u64) -> bool {
        let threshold = self.threshold_micros.load(Ordering::Relaxed);
        threshold >= 0 && duration_micros >= threshold as u64
    }

    /// Record a slow request. `name` is the command name; `args` the raw
    /// argument bytes (lossily decoded and truncated for capture).
    pub fn push(&self, duration_micros: u64, name: &str, args: &[Vec<u8>]) {
        let mut command = Vec::with_capacity(1 + args.len().min(MAX_ARGS + 1));
        command.push(name.to_string());
        for arg in args.iter().take(MAX_ARGS) {
            command.push(render_arg(arg));
        }
        if args.len() > MAX_ARGS {
            command.push(format!("... ({} more arguments)", args.len() - MAX_ARGS));
        }
        let entry = SlowlogEntry {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            unix_secs: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            duration_micros,
            command,
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.max_len {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// The most recent `count` entries, newest first (Redis order).
    #[must_use]
    pub fn entries(&self, count: usize) -> Vec<SlowlogEntry> {
        let ring = self.ring.lock().unwrap();
        ring.iter().rev().take(count).cloned().collect()
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// True when no entries are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all retained entries (ids keep counting up).
    pub fn reset(&self) {
        self.ring.lock().unwrap().clear();
    }
}

fn render_arg(arg: &[u8]) -> String {
    if arg.len() <= MAX_ARG_LEN {
        String::from_utf8_lossy(arg).into_owned()
    } else {
        format!(
            "{}... ({} more bytes)",
            String::from_utf8_lossy(&arg[..MAX_ARG_LEN]),
            arg.len() - MAX_ARG_LEN
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_semantics() {
        let log = Slowlog::new(100, 8);
        assert!(!log.should_log(99));
        assert!(log.should_log(100));
        assert!(log.should_log(5_000));

        log.set_threshold_micros(-1);
        assert!(!log.should_log(u64::MAX), "negative threshold disables");

        log.set_threshold_micros(0);
        assert!(log.should_log(0), "zero threshold logs everything");
    }

    #[test]
    fn ring_is_bounded_and_newest_first() {
        let log = Slowlog::new(0, 3);
        for i in 0..10u64 {
            log.push(i, "GET", &[format!("key{i}").into_bytes()]);
        }
        assert_eq!(log.len(), 3);
        let entries = log.entries(10);
        assert_eq!(entries.len(), 3);
        // Newest first: durations 9, 8, 7; ids 9, 8, 7.
        assert_eq!(
            entries
                .iter()
                .map(|e| e.duration_micros)
                .collect::<Vec<_>>(),
            vec![9, 8, 7]
        );
        assert_eq!(entries[0].id, 9);
        assert_eq!(entries[0].command, vec!["GET", "key9"]);
    }

    #[test]
    fn reset_clears_entries_but_not_ids() {
        let log = Slowlog::new(0, 8);
        log.push(1, "PING", &[]);
        log.push(2, "PING", &[]);
        log.reset();
        assert!(log.is_empty());
        log.push(3, "PING", &[]);
        assert_eq!(log.entries(1)[0].id, 2, "id counter survives reset");
    }

    #[test]
    fn oversized_args_are_truncated() {
        let log = Slowlog::new(0, 4);
        let big = vec![b'x'; 4096];
        let args: Vec<Vec<u8>> = (0..40).map(|i| vec![b'a' + (i % 26)]).collect();
        log.push(10, "SET", std::slice::from_ref(&big));
        log.push(11, "DEL", &args);
        let entries = log.entries(2);
        let set = &entries[1];
        assert!(set.command[1].len() < big.len());
        assert!(set.command[1].ends_with("... (3968 more bytes)"));
        let del = &entries[0];
        assert_eq!(del.command.len(), 1 + MAX_ARGS + 1);
        assert_eq!(*del.command.last().unwrap(), "... (24 more arguments)");
    }
}
