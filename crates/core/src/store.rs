//! [`GdprStore`]: the compliant store façade.
//!
//! Every operation goes through the same pipeline the paper's modified
//! Redis implements (spread across its §4.1–§4.3 changes):
//!
//! 1. **access control** — the actor must hold a grant for the claimed
//!    purpose (Articles 25/32);
//! 2. **purpose limitation** — the key's metadata must whitelist the
//!    purpose and the data subject must not have objected (Articles 5/21);
//! 3. **location policy** — new data may only be placed in permitted
//!    regions (Article 46);
//! 4. the operation executes on the underlying engine, with TTLs resolved
//!    from the retention metadata (Articles 5(e)/13/17);
//! 5. **monitoring** — an audit record is emitted, and under real-time
//!    compliance it is durable before the call returns (Articles 30/33/34);
//! 6. secondary **metadata indexes** are maintained so subject rights can
//!    be answered without scanning (Articles 15/17/20/21).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use audit::log::AuditLog;
use audit::record::{AuditRecord, Operation, Outcome};
use audit::sink::{AuditSink, MemorySink};
use kvstore::clock::SharedClock;
use kvstore::config::StoreConfig;
use kvstore::expire::CycleOutcome;
use kvstore::object::Bytes;
use kvstore::store::KvStore;
use parking_lot::RwLock;

use crate::acl::{AccessController, AccessDecision, Grant};
use crate::audit_pipeline::AuditPipeline;
use crate::hot_cache::{HotCache, HotCacheConfig, HotCacheStats, HotEntry, Probe};
use crate::index::ShardedMetadataIndex;
use crate::location::LocationInventory;
use crate::metadata::PersonalMetadata;
use crate::policy::CompliancePolicy;
use crate::{GdprError, Result};

/// Prefix under which metadata shadow records are stored in the engine.
pub const META_PREFIX: &str = "__gdpr_meta__:";

/// Who is asking, and why — attached to every operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessContext {
    /// The acting entity (application, service, processor).
    pub actor: String,
    /// The declared processing purpose.
    pub purpose: String,
}

impl AccessContext {
    /// Build a context.
    #[must_use]
    pub fn new(actor: &str, purpose: &str) -> Self {
        AccessContext {
            actor: actor.to_string(),
            purpose: purpose.to_string(),
        }
    }
}

/// Counters specific to the compliance layer (the engine keeps its own).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GdprStats {
    /// Operations admitted by the compliance checks.
    pub allowed_ops: u64,
    /// Operations rejected (access, purpose or location violations).
    pub denied_ops: u64,
    /// Audit records emitted.
    pub audit_records: u64,
    /// Keys erased through the right to be forgotten.
    pub erased_by_request: u64,
    /// Keys erased because their retention period elapsed.
    pub erased_by_retention: u64,
    /// Reads served from the TinyLFU hot tier.
    pub cache_hits: u64,
    /// Reads that went through the full compliance pipeline.
    pub cache_misses: u64,
    /// Hot-tier admissions.
    pub cache_admissions: u64,
    /// Hot-tier entries dropped by mutation-bracket invalidation.
    pub cache_invalidations: u64,
}

/// Always-on per-right latency recorders. The paper (and the GDPRbench
/// follow-up) make rights-fulfilment latency the headline compliance
/// metric, so each right records into its own histogram on every
/// invocation — allowed, denied or failed alike.
#[derive(Debug, Default)]
pub(crate) struct RightsTimers {
    pub(crate) erase: obs::AtomicHistogram,
    pub(crate) export: obs::AtomicHistogram,
    pub(crate) keysof: obs::AtomicHistogram,
    pub(crate) getmeta: obs::AtomicHistogram,
    pub(crate) object: obs::AtomicHistogram,
}

/// Lock-free compliance counters (snapshotted into [`GdprStats`]).
#[derive(Debug, Default)]
pub(crate) struct GdprStatsCells {
    allowed_ops: AtomicU64,
    denied_ops: AtomicU64,
    audit_records: AtomicU64,
    erased_by_request: AtomicU64,
    erased_by_retention: AtomicU64,
}

impl GdprStatsCells {
    pub(crate) fn inc_allowed(&self) {
        self.allowed_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_denied(&self) {
        self.denied_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_erased_by_request(&self, n: u64) {
        self.erased_by_request.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_erased_by_retention(&self, n: u64) {
        self.erased_by_retention.fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> GdprStats {
        GdprStats {
            allowed_ops: self.allowed_ops.load(Ordering::Relaxed),
            denied_ops: self.denied_ops.load(Ordering::Relaxed),
            audit_records: self.audit_records.load(Ordering::Relaxed),
            erased_by_request: self.erased_by_request.load(Ordering::Relaxed),
            erased_by_retention: self.erased_by_retention.load(Ordering::Relaxed),
            // The hot-cache counters live on the cache itself; the store
            // façade overlays them (see `GdprStore::stats`).
            ..GdprStats::default()
        }
    }
}

/// The GDPR-compliant store.
///
/// Per-key operations take **no global exclusive lock**: the engine routes
/// the key to its owning shard, the metadata index locks only the owning
/// segment, compliance counters are atomics, the ACL check holds a shared
/// read lock, and audit emission goes through the per-shard buffers of
/// [`AuditPipeline`] (direct to the serialized log only under real-time
/// compliance, where that serialization *is* the measured guarantee).
pub struct GdprStore {
    pub(crate) kv: KvStore,
    pub(crate) hot: Arc<HotCache>,
    pub(crate) audit: AuditPipeline,
    pub(crate) acl: RwLock<AccessController>,
    pub(crate) index: ShardedMetadataIndex,
    pub(crate) policy: CompliancePolicy,
    pub(crate) clock: SharedClock,
    pub(crate) stats: GdprStatsCells,
    pub(crate) rights_timing: RightsTimers,
    /// When the store was opened with an in-memory audit sink, a shared
    /// view of it (lets examples and the breach module read the trail back
    /// without going through the filesystem).
    pub(crate) audit_mirror: Option<MemorySink>,
}

impl std::fmt::Debug for GdprStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GdprStore")
            .field("policy", &self.policy.name)
            .field("keys", &self.kv.len())
            .finish()
    }
}

impl GdprStore {
    /// Open a fully in-memory store (in-memory engine journal if the policy
    /// journals writes, in-memory audit sink). The configuration of the
    /// engine is derived from the compliance policy.
    ///
    /// # Errors
    ///
    /// Propagates engine-open errors.
    pub fn open_in_memory(policy: CompliancePolicy) -> Result<Self> {
        let mut config = StoreConfig::in_memory();
        if policy.journal_writes || policy.monitor_all_operations {
            config = config.aof_in_memory();
        }
        let sink = MemorySink::new();
        let mirror = sink.share();
        Self::open(policy, config, Box::new(sink)).map(|mut store| {
            store.audit_mirror = Some(mirror);
            store
        })
    }

    /// Open a store over an explicit engine configuration and audit sink
    /// (used by the benchmark harness to point both at real files).
    ///
    /// # Errors
    ///
    /// Propagates engine-open errors.
    pub fn open(
        policy: CompliancePolicy,
        mut kv_config: StoreConfig,
        audit_sink: Box<dyn AuditSink>,
    ) -> Result<Self> {
        // The engine-level knobs follow the compliance policy.
        kv_config.fsync = policy.journal_fsync;
        kv_config.expiry_mode = policy.expiry_mode;
        if policy.encrypt_at_rest && kv_config.encryption.is_none() {
            kv_config = kv_config.encrypted(b"gdpr-store-default-passphrase");
        }
        let clock = Arc::clone(&kv_config.clock);
        let kv = KvStore::open(kv_config)?;

        let mut audit_log = AuditLog::new(audit_sink, policy.audit_flush);
        if !policy.audit_chaining {
            audit_log = audit_log.without_chain();
        }
        let audit = AuditPipeline::new(
            audit_log,
            kv.shard_count(),
            policy.audit_flush.is_real_time(),
        );

        let hot = Arc::new(HotCache::new(
            HotCacheConfig::from_env_or_default(),
            kv.router(),
        ));
        Self::hook_engine_invalidation(&kv, &hot);
        let store = GdprStore {
            index: ShardedMetadataIndex::new(kv.router()),
            hot,
            kv,
            audit,
            acl: RwLock::new(AccessController::new()),
            policy,
            clock,
            stats: GdprStatsCells::default(),
            rights_timing: RightsTimers::default(),
            audit_mirror: None,
        };
        store.rebuild_index()?;
        Ok(store)
    }

    /// The compliance policy this store enforces.
    #[must_use]
    pub fn policy(&self) -> &CompliancePolicy {
        &self.policy
    }

    /// The underlying engine (for benchmarks that need engine statistics).
    #[must_use]
    pub fn engine(&self) -> &KvStore {
        &self.kv
    }

    /// Compliance-layer counters (including the hot-read cache's).
    #[must_use]
    pub fn stats(&self) -> GdprStats {
        let mut stats = self.stats.snapshot();
        let hot = self.hot.stats();
        stats.cache_hits = hot.hits;
        stats.cache_misses = hot.misses;
        stats.cache_admissions = hot.admissions;
        stats.cache_invalidations = hot.invalidations;
        stats
    }

    /// Replace the hot-read cache configuration (takes effect on an empty
    /// cache; used by the server's `hotcache=` flag and the benches).
    pub fn set_hot_cache(&mut self, config: HotCacheConfig) {
        self.hot = Arc::new(HotCache::new(config, self.kv.router()));
        Self::hook_engine_invalidation(&self.kv, &self.hot);
    }

    /// Route engine-internal removals — `maxmemory` eviction, lazy and
    /// active expiry — into hot-cache invalidation. The engine fires the
    /// listener while the owning shard's lock is still held, so the stale
    /// entry is gone (and in-flight admissions are epoch-fenced) before
    /// any later read can observe the removal. A removed metadata shadow
    /// invalidates the primary key it guards. This is what lets a cache
    /// hit skip engine revalidation entirely.
    fn hook_engine_invalidation(kv: &KvStore, hot: &Arc<HotCache>) {
        let cache = Arc::clone(hot);
        kv.set_removal_listener(Some(Arc::new(move |key: &str, _cause| {
            let primary = key.strip_prefix(META_PREFIX).unwrap_or(key);
            cache.invalidate(primary);
        })));
    }

    /// Whether the TinyLFU hot-read cache is live.
    #[must_use]
    pub fn hot_cache_enabled(&self) -> bool {
        self.hot.is_enabled()
    }

    /// Hot-read cache counters.
    #[must_use]
    pub fn hot_cache_stats(&self) -> HotCacheStats {
        self.hot.stats()
    }

    /// Snapshots of the per-right latency histograms, in a fixed order
    /// (`erase`, `export`, `keysof`, `getmeta`, `object`). Every
    /// invocation of the corresponding right is counted, whether it was
    /// allowed, denied or errored.
    #[must_use]
    pub fn right_latencies(&self) -> Vec<(&'static str, obs::LatencyHistogram)> {
        let t = &self.rights_timing;
        vec![
            ("erase", t.erase.snapshot()),
            ("export", t.export.snapshot()),
            ("keysof", t.keysof.snapshot()),
            ("getmeta", t.getmeta.snapshot()),
            ("object", t.object.snapshot()),
        ]
    }

    /// Journal statistics aggregated over the engine's per-shard AOF
    /// segments, if persistence is enabled — the compliance layer's view
    /// of the paper's journaling cost (fsyncs, group-commit batching, the
    /// crash-loss risk window).
    #[must_use]
    pub fn aof_stats(&self) -> Option<kvstore::aof::AofStats> {
        self.kv.aof_stats()
    }

    /// Per-segment journal statistics (index `i` is shard `i`'s segment),
    /// if persistence is enabled — the risk window observable per shard.
    #[must_use]
    pub fn aof_segment_stats(&self) -> Option<Vec<kvstore::aof::AofStats>> {
        self.kv.aof_segment_stats()
    }

    /// Current time in Unix milliseconds (from the engine clock).
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.clock.now_millis()
    }

    /// A copy of the audit trail lines, if the store was opened with the
    /// in-memory sink ([`Self::open_in_memory`]). Buffered records are
    /// pushed to the sink first so the trail is complete.
    #[must_use]
    pub fn audit_trail(&self) -> Option<Vec<String>> {
        if self.audit_mirror.is_some() {
            let _ = self.audit.flush();
        }
        self.audit_mirror.as_ref().map(MemorySink::lines)
    }

    /// Current tip digest of the audit hash chain, if chaining is enabled.
    #[must_use]
    pub fn audit_chain_tip(&self) -> Option<String> {
        self.audit.chain_tip()
    }

    /// Install an access grant (Article 25: restrict access by default,
    /// open it explicitly).
    pub fn grant(&self, grant: Grant) {
        let now = self.now_ms();
        self.acl.write().grant(grant.clone());
        self.emit_audit(
            AuditRecord::new(now, &grant.actor, Operation::AccessControl)
                .purpose(&grant.purpose)
                .detail("grant installed"),
        );
    }

    /// Whether `actor` currently holds any unexpired grant for `purpose`
    /// (always `true` when the policy does not enforce access control).
    /// Used by the RESP server's `GDPR.AUTH` to reject a session up front;
    /// per-operation checks still apply afterwards.
    #[must_use]
    pub fn has_grant(&self, actor: &str, purpose: &str) -> bool {
        if !self.policy.enforce_access_control {
            return true;
        }
        let now = self.now_ms();
        self.acl.read().has_grant(actor, purpose, now)
    }

    /// Revoke every grant of `actor` for `purpose`. Returns how many were
    /// removed.
    pub fn revoke(&self, actor: &str, purpose: &str) -> usize {
        let now = self.now_ms();
        let removed = self.acl.write().revoke(actor, purpose);
        self.emit_audit(
            AuditRecord::new(now, actor, Operation::AccessControl)
                .purpose(purpose)
                .detail(&format!("{removed} grants revoked")),
        );
        removed
    }

    // ---- internal helpers ---------------------------------------------------

    pub(crate) fn meta_key(key: &str) -> String {
        format!("{META_PREFIX}{key}")
    }

    /// Whether a key is a metadata shadow record.
    #[must_use]
    pub fn is_meta_key(key: &str) -> bool {
        key.starts_with(META_PREFIX)
    }

    pub(crate) fn emit_audit(&self, record: AuditRecord) {
        // Under the unmodified policy nothing is monitored at all.
        if !self.policy.monitor_all_operations {
            return;
        }
        self.stats.audit_records.fetch_add(1, Ordering::Relaxed);
        // Keyed records buffer on the key's shard; keyless control-plane
        // records (grants, rights requests) ride on shard 0.
        let shard = record.key.as_deref().map_or(0, |key| self.kv.shard_of(key));
        // An audit failure under strict compliance should fail the caller;
        // we surface it lazily through flush errors. Recording into the
        // buffer itself cannot fail for the provided sinks.
        self.audit.emit(shard, record);
    }

    pub(crate) fn load_metadata(&self, key: &str) -> Result<Option<PersonalMetadata>> {
        match self.kv.get(&Self::meta_key(key))? {
            Some(bytes) => match PersonalMetadata::decode(&bytes) {
                Some(meta) => Ok(Some(meta)),
                None => Err(GdprError::CorruptMetadata {
                    key: key.to_string(),
                    detail: format!("{} bytes", bytes.len()),
                }),
            },
            None => Ok(None),
        }
    }

    pub(crate) fn store_metadata(&self, key: &str, meta: &PersonalMetadata) -> Result<()> {
        self.kv.set(&Self::meta_key(key), meta.encode())?;
        if let Some(at) = meta.expires_at_ms {
            self.kv.expire_at(&Self::meta_key(key), at)?;
        }
        Ok(())
    }

    fn check_access(&self, ctx: &AccessContext, subject: &str, key: &str) -> Result<()> {
        if !self.policy.enforce_access_control {
            return Ok(());
        }
        let now = self.now_ms();
        let decision = self
            .acl
            .read()
            .check(&ctx.actor, &ctx.purpose, subject, now);
        match decision {
            AccessDecision::Allow => Ok(()),
            AccessDecision::Deny { reason } => {
                self.stats.inc_denied();
                self.emit_audit(
                    AuditRecord::new(now, &ctx.actor, Operation::Read)
                        .key(key)
                        .subject(subject)
                        .purpose(&ctx.purpose)
                        .outcome(Outcome::Denied)
                        .detail(&reason),
                );
                Err(GdprError::AccessDenied {
                    actor: ctx.actor.clone(),
                    purpose: ctx.purpose.clone(),
                    reason,
                })
            }
        }
    }

    fn check_purpose(&self, ctx: &AccessContext, key: &str, meta: &PersonalMetadata) -> Result<()> {
        if !self.policy.enforce_purpose_limitation {
            return Ok(());
        }
        if meta.allows_purpose(&ctx.purpose) {
            return Ok(());
        }
        let now = self.now_ms();
        self.stats.inc_denied();
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::Read)
                .key(key)
                .subject(&meta.subject)
                .purpose(&ctx.purpose)
                .outcome(Outcome::Denied)
                .detail("purpose not permitted for this key"),
        );
        Err(GdprError::PurposeViolation {
            key: key.to_string(),
            purpose: ctx.purpose.clone(),
        })
    }

    /// Resolve the retention deadline carried in freshly supplied metadata:
    /// values smaller than the current clock are interpreted as *relative*
    /// TTLs (the convenient `with_ttl_millis` spelling), larger ones as
    /// absolute deadlines.
    fn resolve_retention(&self, meta: &mut PersonalMetadata) {
        let now = self.now_ms();
        if meta.created_at_ms == 0 {
            meta.created_at_ms = now;
        }
        if let Some(value) = meta.expires_at_ms {
            if value < now {
                meta.expires_at_ms = Some(now.saturating_add(value));
            }
        }
    }

    // ---- data-path operations -----------------------------------------------

    /// Store personal data under `key` with its GDPR metadata.
    ///
    /// # Errors
    ///
    /// Returns access, purpose, location or storage errors; on any denial a
    /// `Denied` audit record is emitted (when monitoring is enabled).
    pub fn put(
        &self,
        ctx: &AccessContext,
        key: &str,
        value: Bytes,
        mut meta: PersonalMetadata,
    ) -> Result<()> {
        let now = self.now_ms();

        // Article 46: placement control.
        if !self.policy.location_policy.allows(meta.location) {
            self.stats.inc_denied();
            self.emit_audit(
                AuditRecord::new(now, &ctx.actor, Operation::Write)
                    .key(key)
                    .subject(&meta.subject)
                    .purpose(&ctx.purpose)
                    .outcome(Outcome::Denied)
                    .detail("location policy violation"),
            );
            return Err(GdprError::LocationViolation {
                region: meta.location.to_string(),
            });
        }

        self.check_access(ctx, &meta.subject, key)?;

        // Article 5: the writer must itself be acting under a declared,
        // whitelisted purpose.
        if self.policy.enforce_purpose_limitation && !meta.purposes.contains(&ctx.purpose) {
            self.stats.inc_denied();
            return Err(GdprError::PurposeViolation {
                key: key.to_string(),
                purpose: ctx.purpose.clone(),
            });
        }

        self.resolve_retention(&mut meta);

        let value_len = value.len();
        // Mutation bracket: value, metadata shadow and index posting change
        // together under the key's segment lock, so a concurrent erasure of
        // the same key cannot interleave (see ShardedMetadataIndex docs).
        self.index.with_key_segment(key, |segment| -> Result<()> {
            self.kv.set(key, value)?;
            if let Some(at) = meta.expires_at_ms {
                self.kv.expire_at(key, at)?;
            }
            self.store_metadata(key, &meta)?;
            if self.policy.maintain_indexes {
                segment.insert(key, &meta.subject, meta.purposes.iter().cloned());
            }
            // Last step of the bracket: drop any hot entry and fence
            // in-flight admissions of the pre-write value.
            self.hot.invalidate(key);
            Ok(())
        })?;

        self.stats.inc_allowed();
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::Write)
                .key(key)
                .subject(&meta.subject)
                .purpose(&ctx.purpose)
                .detail(&format!("SET {value_len} bytes")),
        );
        self.flush_audit_if_strict()
    }

    /// Store a multi-field record (the YCSB record shape) with metadata.
    ///
    /// # Errors
    ///
    /// As for [`Self::put`].
    pub fn put_record(
        &self,
        ctx: &AccessContext,
        key: &str,
        fields: &BTreeMap<String, Bytes>,
        mut meta: PersonalMetadata,
    ) -> Result<()> {
        let now = self.now_ms();
        if !self.policy.location_policy.allows(meta.location) {
            self.stats.inc_denied();
            return Err(GdprError::LocationViolation {
                region: meta.location.to_string(),
            });
        }
        self.check_access(ctx, &meta.subject, key)?;
        if self.policy.enforce_purpose_limitation && !meta.purposes.contains(&ctx.purpose) {
            self.stats.inc_denied();
            return Err(GdprError::PurposeViolation {
                key: key.to_string(),
                purpose: ctx.purpose.clone(),
            });
        }
        self.resolve_retention(&mut meta);

        self.index.with_key_segment(key, |segment| -> Result<()> {
            self.kv.hset_multi(key, fields)?;
            if let Some(at) = meta.expires_at_ms {
                self.kv.expire_at(key, at)?;
            }
            self.store_metadata(key, &meta)?;
            if self.policy.maintain_indexes {
                segment.insert(key, &meta.subject, meta.purposes.iter().cloned());
            }
            self.hot.invalidate(key);
            Ok(())
        })?;
        self.stats.inc_allowed();
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::Write)
                .key(key)
                .subject(&meta.subject)
                .purpose(&ctx.purpose)
                .detail(&format!("HMSET {} fields", fields.len())),
        );
        self.flush_audit_if_strict()
    }

    /// Update fields of an existing record, re-using its stored metadata.
    ///
    /// # Errors
    ///
    /// Returns [`GdprError::MissingMetadata`] if the key has no metadata
    /// and the policy enforces purpose limitation.
    pub fn update_record(
        &self,
        ctx: &AccessContext,
        key: &str,
        fields: &BTreeMap<String, Bytes>,
    ) -> Result<()> {
        let now = self.now_ms();
        let meta = self.require_metadata(key)?;
        if let Some(meta) = &meta {
            self.check_access(ctx, &meta.subject, key)?;
            self.check_purpose(ctx, key, meta)?;
        }
        let meta = self.index.with_key_segment(key, |_| -> Result<_> {
            // Re-check inside the bracket: an erasure may have removed the
            // key (and its metadata) between the check above and now; the
            // update must not resurrect data for an erased subject.
            let meta = self.require_metadata(key)?;
            self.kv.hset_multi(key, fields)?;
            // hset clears no TTL, but SET-based metadata writes do; restore
            // the deadline on the data key if the metadata carries one.
            if let Some(meta) = &meta {
                if let Some(at) = meta.expires_at_ms {
                    self.kv.expire_at(key, at)?;
                }
            }
            self.hot.invalidate(key);
            Ok(meta)
        })?;
        self.stats.inc_allowed();
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::Write)
                .key(key)
                .subject(meta.as_ref().map(|m| m.subject.as_str()).unwrap_or(""))
                .purpose(&ctx.purpose)
                .detail(&format!("HMSET {} fields (update)", fields.len())),
        );
        self.flush_audit_if_strict()
    }

    fn require_metadata(&self, key: &str) -> Result<Option<PersonalMetadata>> {
        match self.load_metadata(key)? {
            Some(meta) => Ok(Some(meta)),
            None if self.policy.enforce_purpose_limitation => Err(GdprError::MissingMetadata {
                key: key.to_string(),
            }),
            None => Ok(None),
        }
    }

    /// Read the string value stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns access/purpose violations, missing-metadata errors (when the
    /// policy demands metadata) and storage errors.
    pub fn get(&self, ctx: &AccessContext, key: &str) -> Result<Option<Bytes>> {
        let now = self.now_ms();

        // Hot tier first: a resident entry carries value and metadata, so
        // a hit touches no engine shard at all — every mutation bracket
        // invalidates synchronously, and removals that bypass the brackets
        // (maxmemory eviction, lazy and active expiry) invalidate through
        // the engine's removal listener while the shard lock is still
        // held. The one removal no listener can deliver is a retention
        // deadline that has passed but not yet fired; the cached metadata
        // carries that deadline, checked here. Access/purpose checks
        // re-run on the cached metadata so revocations and objections are
        // never bypassed, and the audit record is identical to the slow
        // path's: the trail must not depend on cache state.
        let mut token = None;
        match self.hot.probe(key) {
            Probe::Hit(entry) => {
                let live = entry
                    .meta
                    .as_ref()
                    .and_then(|m| m.expires_at_ms)
                    .is_none_or(|at| now < at);
                if live {
                    if let Some(meta) = &entry.meta {
                        self.check_access(ctx, &meta.subject, key)?;
                        self.check_purpose(ctx, key, meta)?;
                    }
                    self.stats.inc_allowed();
                    self.emit_audit(
                        AuditRecord::new(now, &ctx.actor, Operation::Read)
                            .key(key)
                            .subject(
                                entry
                                    .meta
                                    .as_ref()
                                    .map(|m| m.subject.as_str())
                                    .unwrap_or(""),
                            )
                            .purpose(&ctx.purpose)
                            .detail(&format!("GET {} bytes", entry.value.len())),
                    );
                    self.flush_audit_if_strict()?;
                    return Ok(Some(entry.value));
                }
                // Retention elapsed under the resident entry; drop it and
                // fall through to the authoritative path, which lazily
                // expires the shadow and applies the policy's
                // missing-metadata behavior.
                self.hot.invalidate(key);
            }
            Probe::Miss(t) => token = Some(t),
        }

        let meta = match self.kv.exists(key)? {
            true => self.require_metadata(key)?,
            false => None,
        };
        if let Some(meta) = &meta {
            self.check_access(ctx, &meta.subject, key)?;
            self.check_purpose(ctx, key, meta)?;
        }
        let value = self.kv.get(key)?;
        if let (Some(value), Some(token)) = (&value, token) {
            // TinyLFU decides residency; the token refuses admission if
            // any mutation bracket on this segment ran since the probe.
            self.hot.admit(
                key,
                HotEntry {
                    value: value.clone(),
                    meta: meta.clone().map(std::sync::Arc::new),
                },
                token,
            );
        }
        self.stats.inc_allowed();
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::Read)
                .key(key)
                .subject(meta.as_ref().map(|m| m.subject.as_str()).unwrap_or(""))
                .purpose(&ctx.purpose)
                .detail(&format!("GET {} bytes", value.as_ref().map_or(0, Vec::len))),
        );
        self.flush_audit_if_strict()?;
        Ok(value)
    }

    /// Read a multi-field record.
    ///
    /// # Errors
    ///
    /// As for [`Self::get`].
    pub fn get_record(
        &self,
        ctx: &AccessContext,
        key: &str,
    ) -> Result<Option<BTreeMap<String, Bytes>>> {
        let now = self.now_ms();
        let meta = match self.kv.exists(key)? {
            true => self.require_metadata(key)?,
            false => None,
        };
        if let Some(meta) = &meta {
            self.check_access(ctx, &meta.subject, key)?;
            self.check_purpose(ctx, key, meta)?;
        }
        let record = self.kv.hgetall(key)?;
        self.stats.inc_allowed();
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::Read)
                .key(key)
                .subject(meta.as_ref().map(|m| m.subject.as_str()).unwrap_or(""))
                .purpose(&ctx.purpose)
                .detail("HGETALL"),
        );
        self.flush_audit_if_strict()?;
        Ok(record)
    }

    /// Replace the GDPR metadata of an existing key (subject transfer,
    /// purpose re-consent, retention change) without rewriting its value.
    /// The metadata shadow record, the key's retention deadline and the
    /// subject/purpose index postings change together under the key's
    /// segment lock.
    ///
    /// The actor must be permitted to act on the key's *current* subject
    /// as well as the new one (re-stamping someone else's data to a
    /// subject you hold a grant for is itself an access to their data),
    /// the writer's purpose must be whitelisted in the new metadata
    /// (Article 5, as for [`Self::put`]), and recorded objections survive
    /// the replacement (Article 21: a rights request cannot be undone by a
    /// writer re-stamping metadata).
    ///
    /// # Errors
    ///
    /// Returns [`GdprError::NoSuchKey`] when the key holds no value, plus
    /// access, purpose, location and storage errors.
    pub fn set_metadata(
        &self,
        ctx: &AccessContext,
        key: &str,
        mut meta: PersonalMetadata,
    ) -> Result<()> {
        let now = self.now_ms();
        if !self.policy.location_policy.allows(meta.location) {
            self.stats.inc_denied();
            return Err(GdprError::LocationViolation {
                region: meta.location.to_string(),
            });
        }
        if let Some(existing) = self.load_metadata(key)? {
            self.check_access(ctx, &existing.subject, key)?;
        }
        self.check_access(ctx, &meta.subject, key)?;
        if self.policy.enforce_purpose_limitation && !meta.purposes.contains(&ctx.purpose) {
            self.stats.inc_denied();
            return Err(GdprError::PurposeViolation {
                key: key.to_string(),
                purpose: ctx.purpose.clone(),
            });
        }
        self.resolve_retention(&mut meta);
        self.index.with_key_segment(key, |segment| -> Result<()> {
            if !self.kv.exists(key)? {
                return Err(GdprError::NoSuchKey {
                    key: key.to_string(),
                });
            }
            // Article 21: objections outlive metadata replacement. Re-read
            // inside the bracket so a racing objection cannot be lost.
            if let Some(existing) = self.load_metadata(key)? {
                for objection in existing.objections {
                    meta.objections.insert(objection);
                }
            }
            self.store_metadata(key, &meta)?;
            match meta.expires_at_ms {
                Some(at) => {
                    self.kv.expire_at(key, at)?;
                }
                None => {
                    // Lifting retention must also clear the value key's old
                    // engine-level deadline, or the engine would still erase
                    // it while the metadata claims indefinite retention.
                    self.kv.execute(kvstore::commands::Command::Persist {
                        key: key.to_string(),
                    })?;
                }
            }
            if self.policy.maintain_indexes {
                segment.remove(key);
                segment.insert(key, &meta.subject, meta.purposes.iter().cloned());
            }
            // The cached entry carries the old metadata (subject,
            // purposes, objections); it must not survive the re-stamp.
            self.hot.invalidate(key);
            Ok(())
        })?;
        self.stats.inc_allowed();
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::Write)
                .key(key)
                .subject(&meta.subject)
                .purpose(&ctx.purpose)
                .detail("metadata replaced"),
        );
        self.flush_audit_if_strict()
    }

    /// Read the GDPR metadata of a key (itself an audited read).
    ///
    /// # Errors
    ///
    /// Returns corruption or storage errors.
    pub fn metadata(&self, ctx: &AccessContext, key: &str) -> Result<Option<PersonalMetadata>> {
        let _timed = self.rights_timing.getmeta.start_timer();
        let now = self.now_ms();
        let meta = self.load_metadata(key)?;
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::Read)
                .key(key)
                .subject(meta.as_ref().map(|m| m.subject.as_str()).unwrap_or(""))
                .purpose(&ctx.purpose)
                .detail("metadata read"),
        );
        Ok(meta)
    }

    /// Delete one key (and its metadata). Returns whether it existed.
    ///
    /// # Errors
    ///
    /// Returns access violations and storage errors.
    pub fn delete(&self, ctx: &AccessContext, key: &str) -> Result<bool> {
        let now = self.now_ms();
        let meta = self.load_metadata(key)?;
        if let Some(meta) = &meta {
            self.check_access(ctx, &meta.subject, key)?;
        }
        let existed = self
            .index
            .with_key_segment(key, |segment| -> Result<bool> {
                let existed = self.kv.delete(key)?;
                self.kv.delete(&Self::meta_key(key))?;
                if self.policy.maintain_indexes {
                    segment.remove(key);
                }
                self.hot.invalidate(key);
                Ok(existed)
            })?;
        if existed && self.policy.scrub_aof_on_erasure {
            self.kv.rewrite_aof()?;
        }
        self.stats.inc_allowed();
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::Delete)
                .key(key)
                .subject(meta.as_ref().map(|m| m.subject.as_str()).unwrap_or(""))
                .purpose(&ctx.purpose)
                .detail(if existed {
                    "DEL (existed)"
                } else {
                    "DEL (missing)"
                }),
        );
        self.flush_audit_if_strict()?;
        Ok(existed)
    }

    /// Ordered scan of up to `count` *data* keys starting at `start`
    /// (metadata shadow keys are filtered out).
    ///
    /// # Errors
    ///
    /// Returns storage errors.
    pub fn scan(&self, ctx: &AccessContext, start: &str, count: usize) -> Result<Vec<String>> {
        let now = self.now_ms();
        // Shadow keys form one contiguous `__gdpr_meta__:` block in key
        // order, so a fixed over-fetch cannot compensate for them (a scan
        // landing inside the block would return short). Page through the
        // engine until `count` data keys are collected or the keyspace is
        // exhausted.
        let mut keys: Vec<String> = Vec::with_capacity(count);
        let mut cursor = start.to_string();
        let batch_size = count.clamp(16, 4_096);
        while keys.len() < count {
            let raw = self.kv.scan(&cursor, batch_size)?;
            let exhausted = raw.len() < batch_size;
            if let Some(last) = raw.last() {
                // Smallest string strictly greater than `last`.
                cursor = format!("{last}\u{0}");
            }
            keys.extend(
                raw.into_iter()
                    .filter(|k| !Self::is_meta_key(k))
                    .take(count - keys.len()),
            );
            if exhausted {
                break;
            }
        }
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::Read)
                .purpose(&ctx.purpose)
                .detail(&format!("SCAN {} keys", keys.len())),
        );
        self.flush_audit_if_strict()?;
        Ok(keys)
    }

    /// Number of data keys currently stored (excluding metadata shadows).
    #[must_use]
    pub fn len(&self) -> usize {
        let total = self.kv.len();
        let metas = self
            .kv
            .keys(&format!("{META_PREFIX}*"))
            .map(|v| v.len())
            .unwrap_or(0);
        total.saturating_sub(metas)
    }

    /// Whether the store holds no data keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run the engine's background duties (expiry cycle, batched fsyncs)
    /// and clean up the compliance layer after any erased keys. Returns the
    /// engine cycle outcome.
    ///
    /// # Errors
    ///
    /// Propagates engine and audit errors.
    pub fn tick(&self) -> Result<CycleOutcome> {
        let outcome = self.kv.tick()?;
        let now = self.now_ms();
        let mut erased_data_keys = 0u64;
        for key in &outcome.removed {
            if Self::is_meta_key(key) {
                continue;
            }
            erased_data_keys += 1;
            self.index.with_key_segment(key, |segment| -> Result<()> {
                // The engine already fired the deadline; whatever the hot
                // tier holds for this key predates it (a concurrent
                // re-creating put serializes on this bracket and leaves
                // the cache empty anyway), so drop it unconditionally.
                self.hot.invalidate(key);
                // A concurrent put may have re-created the key (with fresh
                // metadata and posting) after the engine expired it; only
                // clean up if it is still gone.
                if self.kv.exists(key)? {
                    return Ok(());
                }
                if self.policy.maintain_indexes {
                    segment.remove(key);
                }
                // Make sure the shadow record goes too, even if its own TTL
                // cycle has not caught it yet.
                self.kv.delete(&Self::meta_key(key))?;
                Ok(())
            })?;
            self.emit_audit(
                AuditRecord::new(now, "retention-engine", Operation::Delete)
                    .key(key)
                    .detail("erased: retention period elapsed"),
            );
        }
        if erased_data_keys > 0 {
            self.stats.add_erased_by_retention(erased_data_keys);
            if self.policy.scrub_aof_on_erasure {
                self.kv.rewrite_aof()?;
            }
        }
        // Drain the per-shard audit buffers and give the periodic audit
        // policy a chance to flush even when no records were emitted this
        // tick.
        self.audit.flush().map_err(GdprError::from)?;
        Ok(outcome)
    }

    pub(crate) fn flush_audit_if_strict(&self) -> Result<()> {
        if self.policy.audit_flush.is_real_time() {
            self.audit.flush()?;
        }
        Ok(())
    }

    /// Rebuild the in-memory metadata indexes from the shadow records
    /// (after recovery from the AOF, for example).
    ///
    /// # Errors
    ///
    /// Returns corruption errors from undecodable shadow records.
    pub fn rebuild_index(&self) -> Result<()> {
        if !self.policy.maintain_indexes {
            return Ok(());
        }
        self.index.clear();
        for meta_key in self.kv.keys(&format!("{META_PREFIX}*"))? {
            let data_key = meta_key.trim_start_matches(META_PREFIX).to_string();
            if let Some(bytes) = self.kv.get(&meta_key)? {
                match PersonalMetadata::decode(&bytes) {
                    Some(meta) => {
                        self.index
                            .insert(&data_key, &meta.subject, meta.purposes.iter().cloned());
                    }
                    None => {
                        return Err(GdprError::CorruptMetadata {
                            key: data_key,
                            detail: "rebuild".to_string(),
                        })
                    }
                }
            }
        }
        Ok(())
    }

    /// Apply one journal record streamed from a replication primary.
    ///
    /// The record is an *engine* command (the primary already ran the
    /// compliance checks before journaling it), so it executes directly on
    /// the engine — but the metadata index must stay coherent: when the
    /// record touches a metadata shadow key, the engine write and the index
    /// posting change together under the data key's segment lock, exactly
    /// as [`Self::put`] brackets them on the primary. This is how an
    /// erasure on the primary removes both the value *and the postings* on
    /// every replica.
    ///
    /// # Errors
    ///
    /// Propagates engine execution errors and metadata corruption.
    pub fn apply_replicated(&self, cmd: kvstore::commands::Command) -> Result<()> {
        use kvstore::commands::Command;
        if matches!(cmd, Command::FlushAll) {
            self.kv.execute(cmd)?;
            self.index.clear();
            self.hot.clear();
            return Ok(());
        }
        let meta_data_key = cmd
            .primary_key()
            .filter(|key| Self::is_meta_key(key))
            .map(|key| key.trim_start_matches(META_PREFIX).to_string());
        match meta_data_key {
            Some(data_key) => self
                .index
                .with_key_segment(&data_key, |segment| -> Result<()> {
                    self.kv.execute(cmd)?;
                    if self.policy.maintain_indexes {
                        match self.load_metadata(&data_key)? {
                            Some(meta) => {
                                segment.remove(&data_key);
                                segment.insert(
                                    &data_key,
                                    &meta.subject,
                                    meta.purposes.iter().cloned(),
                                );
                            }
                            None => segment.remove(&data_key),
                        }
                    }
                    self.hot.invalidate(&data_key);
                    Ok(())
                }),
            None => {
                // A replicated write to a data key (including the
                // primary's journaled eviction DELs) must push the old
                // value out of the replica's hot tier.
                let touched = cmd.primary_key().map(str::to_string);
                self.kv.execute(cmd)?;
                if let Some(key) = touched {
                    self.hot.invalidate(&key);
                }
                Ok(())
            }
        }
    }

    /// Per-region inventory of stored personal data (Article 46 reporting).
    ///
    /// # Errors
    ///
    /// Returns storage or corruption errors.
    pub fn location_inventory(&self) -> Result<LocationInventory> {
        let mut inventory = LocationInventory::new();
        for meta_key in self.kv.keys(&format!("{META_PREFIX}*"))? {
            if let Some(bytes) = self.kv.get(&meta_key)? {
                if let Some(meta) = PersonalMetadata::decode(&bytes) {
                    inventory.add(meta.location);
                }
            }
        }
        Ok(inventory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::Region;
    use kvstore::clock::SimClock;

    fn ctx() -> AccessContext {
        AccessContext::new("app", "billing")
    }

    fn meta() -> PersonalMetadata {
        PersonalMetadata::new("alice")
            .with_purpose("billing")
            .with_location(Region::Eu)
    }

    fn permissive_store() -> GdprStore {
        // Strict policy but with a grant installed for the test actor.
        let store = GdprStore::open_in_memory(CompliancePolicy::strict()).unwrap();
        store.grant(Grant::new("app", "billing"));
        store
    }

    #[test]
    fn put_get_delete_roundtrip_under_strict_policy() {
        let store = permissive_store();
        store
            .put(&ctx(), "user:alice:email", b"a@b.c".to_vec(), meta())
            .unwrap();
        assert_eq!(
            store.get(&ctx(), "user:alice:email").unwrap(),
            Some(b"a@b.c".to_vec())
        );
        assert_eq!(store.len(), 1);
        assert!(store.delete(&ctx(), "user:alice:email").unwrap());
        assert_eq!(store.get(&ctx(), "user:alice:email").unwrap(), None);
        assert!(store.is_empty());
        let stats = store.stats();
        assert!(stats.allowed_ops >= 3);
        assert_eq!(stats.denied_ops, 0);
    }

    #[test]
    fn unmodified_policy_skips_all_checks() {
        let store = GdprStore::open_in_memory(CompliancePolicy::unmodified()).unwrap();
        // No grants installed, no metadata checks, no audit.
        store.put(&ctx(), "k", b"v".to_vec(), meta()).unwrap();
        assert_eq!(store.get(&ctx(), "k").unwrap(), Some(b"v".to_vec()));
        assert!(store.audit_trail().unwrap().is_empty());
        assert_eq!(store.stats().audit_records, 0);
    }

    #[test]
    fn access_control_denies_unknown_actor() {
        let store = GdprStore::open_in_memory(CompliancePolicy::strict()).unwrap();
        let err = store.put(&ctx(), "k", b"v".to_vec(), meta()).unwrap_err();
        assert!(matches!(err, GdprError::AccessDenied { .. }));
        assert_eq!(store.stats().denied_ops, 1);
        // The denial itself is evidence in the trail.
        let trail = store.audit_trail().unwrap();
        assert!(trail.iter().any(|l| l.contains("denied")));
    }

    #[test]
    fn purpose_limitation_blocks_non_whitelisted_reads() {
        let store = permissive_store();
        store.grant(Grant::new("app", "marketing"));
        store.put(&ctx(), "k", b"v".to_vec(), meta()).unwrap();
        let marketing = AccessContext::new("app", "marketing");
        let err = store.get(&marketing, "k").unwrap_err();
        assert!(matches!(err, GdprError::PurposeViolation { .. }));
    }

    #[test]
    fn objection_blocks_previously_allowed_purpose() {
        let store = permissive_store();
        store.grant(Grant::new("app", "analytics"));
        let m = meta().with_purpose("analytics").with_objection("analytics");
        store.put(&ctx(), "k", b"v".to_vec(), m).unwrap();
        let analytics = AccessContext::new("app", "analytics");
        assert!(store.get(&analytics, "k").is_err());
    }

    #[test]
    fn location_policy_blocks_non_eu_placement() {
        let store = permissive_store();
        let err = store
            .put(&ctx(), "k", b"v".to_vec(), meta().with_location(Region::Us))
            .unwrap_err();
        assert!(matches!(err, GdprError::LocationViolation { .. }));
    }

    #[test]
    fn writer_purpose_must_be_whitelisted() {
        let store = permissive_store();
        // Metadata whitelists only "analytics" but the writer claims "billing".
        let m = PersonalMetadata::new("alice").with_purpose("analytics");
        let err = store.put(&ctx(), "k", b"v".to_vec(), m).unwrap_err();
        assert!(matches!(err, GdprError::PurposeViolation { .. }));
    }

    #[test]
    fn relative_ttl_is_resolved_against_the_clock() {
        let clock = SimClock::new(1_000_000);
        let store = GdprStore::open(
            CompliancePolicy::strict(),
            StoreConfig::in_memory()
                .aof_in_memory()
                .clock(clock.clone()),
            Box::new(MemorySink::new()),
        )
        .unwrap();
        store.grant(Grant::new("app", "billing"));
        store
            .put(&ctx(), "k", b"v".to_vec(), meta().with_ttl_millis(5_000))
            .unwrap();
        let stored = store.load_metadata("k").unwrap().unwrap();
        assert_eq!(stored.expires_at_ms, Some(1_005_000));
        assert_eq!(stored.created_at_ms, 1_000_000);
        // After the TTL the engine erases both key and shadow.
        clock.advance_millis(6_000);
        store.tick().unwrap();
        assert_eq!(store.get(&ctx(), "k").unwrap(), None);
        assert!(store.load_metadata("k").unwrap().is_none());
        assert!(store.stats().erased_by_retention >= 1);
    }

    #[test]
    fn records_roundtrip_and_update() {
        let store = permissive_store();
        let mut fields = BTreeMap::new();
        fields.insert("field0".to_string(), b"v0".to_vec());
        fields.insert("field1".to_string(), b"v1".to_vec());
        store
            .put_record(&ctx(), "user:alice:profile", &fields, meta())
            .unwrap();
        let read = store
            .get_record(&ctx(), "user:alice:profile")
            .unwrap()
            .unwrap();
        assert_eq!(read.len(), 2);

        let mut update = BTreeMap::new();
        update.insert("field1".to_string(), b"updated".to_vec());
        store
            .update_record(&ctx(), "user:alice:profile", &update)
            .unwrap();
        let read = store
            .get_record(&ctx(), "user:alice:profile")
            .unwrap()
            .unwrap();
        assert_eq!(read["field1"], b"updated".to_vec());
        assert_eq!(read["field0"], b"v0".to_vec());
    }

    #[test]
    fn update_without_metadata_is_rejected_under_strict_policy() {
        let store = permissive_store();
        let mut fields = BTreeMap::new();
        fields.insert("f".to_string(), b"v".to_vec());
        let err = store
            .update_record(&ctx(), "never-created", &fields)
            .unwrap_err();
        assert!(matches!(err, GdprError::MissingMetadata { .. }));
    }

    #[test]
    fn scan_excludes_metadata_shadow_keys() {
        let store = permissive_store();
        for i in 0..5 {
            store
                .put(&ctx(), &format!("user:{i}"), b"v".to_vec(), meta())
                .unwrap();
        }
        let keys = store.scan(&ctx(), "", 100).unwrap();
        assert_eq!(keys.len(), 5);
        assert!(keys.iter().all(|k| !GdprStore::is_meta_key(k)));
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn scan_pages_past_a_large_shadow_key_block() {
        // `__gdpr_meta__:` shadows sort before `user:` data keys, so a scan
        // from "" first walks a contiguous block of shadow keys as large as
        // the dataset itself; the scan must page past it rather than return
        // short.
        let store = permissive_store();
        for i in 0..300 {
            store
                .put(&ctx(), &format!("user:{i:04}"), b"v".to_vec(), meta())
                .unwrap();
        }
        let keys = store.scan(&ctx(), "", 100).unwrap();
        assert_eq!(keys.len(), 100, "scan starved by the shadow-key block");
        assert!(keys.iter().all(|k| k.starts_with("user:")));
        assert_eq!(keys[0], "user:0000");
        // Scanning everything also works, and stops cleanly at exhaustion.
        assert_eq!(store.scan(&ctx(), "", 10_000).unwrap().len(), 300);
    }

    #[test]
    fn audit_trail_records_reads_and_writes_with_chain() {
        let store = permissive_store();
        store.put(&ctx(), "k", b"v".to_vec(), meta()).unwrap();
        store.get(&ctx(), "k").unwrap();
        let trail = store.audit_trail().unwrap();
        assert!(
            trail.len() >= 3,
            "grant + write + read, got {}",
            trail.len()
        );
        assert!(store.audit_chain_tip().is_some());
        // Verify the chain end to end.
        let parsed = audit::reader::parse_trail(&trail.join("\n")).unwrap();
        audit::reader::verify_trail(&parsed).unwrap();
    }

    #[test]
    fn metadata_accessor_and_inventory() {
        let store = permissive_store();
        store.put(&ctx(), "k", b"v".to_vec(), meta()).unwrap();
        let m = store.metadata(&ctx(), "k").unwrap().unwrap();
        assert_eq!(m.subject, "alice");
        let inventory = store.location_inventory().unwrap();
        assert_eq!(inventory.count(Region::Eu), 1);
        assert_eq!(inventory.total(), 1);
    }

    #[test]
    fn set_metadata_reindexes_and_respects_existence() {
        let store = permissive_store();
        store.put(&ctx(), "k", b"v".to_vec(), meta()).unwrap();
        assert_eq!(store.index.keys_of_subject("alice"), vec!["k"]);

        // Transfer the key to a new subject with new purposes.
        let new_meta = PersonalMetadata::new("bob")
            .with_purpose("billing")
            .with_location(Region::Eu);
        store.set_metadata(&ctx(), "k", new_meta).unwrap();
        assert!(store.index.keys_of_subject("alice").is_empty());
        assert_eq!(store.index.keys_of_subject("bob"), vec!["k"]);
        assert_eq!(store.load_metadata("k").unwrap().unwrap().subject, "bob");
        // The value itself is untouched.
        assert_eq!(store.get(&ctx(), "k").unwrap(), Some(b"v".to_vec()));

        // Setting metadata on a missing key is refused.
        let err = store.set_metadata(&ctx(), "missing", meta()).unwrap_err();
        assert!(matches!(err, GdprError::NoSuchKey { .. }));
    }

    #[test]
    fn set_metadata_applies_retention_deadline() {
        let clock = SimClock::new(1_000_000);
        let store = GdprStore::open(
            CompliancePolicy::strict(),
            StoreConfig::in_memory()
                .aof_in_memory()
                .clock(clock.clone()),
            Box::new(MemorySink::new()),
        )
        .unwrap();
        store.grant(Grant::new("app", "billing"));
        store.put(&ctx(), "k", b"v".to_vec(), meta()).unwrap();
        store
            .set_metadata(&ctx(), "k", meta().with_ttl_millis(5_000))
            .unwrap();
        clock.advance_millis(6_000);
        store.tick().unwrap();
        assert_eq!(store.get(&ctx(), "k").unwrap(), None);
        assert!(store.load_metadata("k").unwrap().is_none());
    }

    #[test]
    fn set_metadata_requires_access_to_the_current_subject() {
        // An actor whose grant is scoped to bob must not be able to
        // re-stamp alice's key onto bob (stealing it from alice's index).
        let store = GdprStore::open_in_memory(CompliancePolicy::strict()).unwrap();
        store.grant(Grant::new("app", "billing"));
        store.put(&ctx(), "k", b"v".to_vec(), meta()).unwrap();
        store.revoke("app", "billing");
        store.grant(Grant::new("app", "billing").for_subject("bob"));
        let bob_meta = PersonalMetadata::new("bob").with_purpose("billing");
        let err = store.set_metadata(&ctx(), "k", bob_meta).unwrap_err();
        assert!(matches!(err, GdprError::AccessDenied { .. }));
        assert_eq!(store.index.keys_of_subject("alice"), vec!["k"]);
        assert!(store.index.keys_of_subject("bob").is_empty());
    }

    #[test]
    fn set_metadata_requires_the_writer_purpose_to_be_whitelisted() {
        let store = permissive_store();
        store.put(&ctx(), "k", b"v".to_vec(), meta()).unwrap();
        // New metadata whitelists only "analytics"; the writer claims
        // "billing" — the same shape put() refuses.
        let m = PersonalMetadata::new("alice").with_purpose("analytics");
        let err = store.set_metadata(&ctx(), "k", m).unwrap_err();
        assert!(matches!(err, GdprError::PurposeViolation { .. }));
    }

    #[test]
    fn set_metadata_preserves_recorded_objections() {
        let store = permissive_store();
        store.grant(Grant::new("app", "analytics"));
        let m = meta().with_purpose("analytics");
        store.put(&ctx(), "k", b"v".to_vec(), m.clone()).unwrap();
        store.right_to_object(&ctx(), "alice", "analytics").unwrap();
        // Re-stamping the metadata must not wash away the objection.
        store.set_metadata(&ctx(), "k", m).unwrap();
        let stored = store.load_metadata("k").unwrap().unwrap();
        assert!(stored.objections.contains("analytics"));
        let analytics = AccessContext::new("app", "analytics");
        assert!(store.get(&analytics, "k").is_err());
    }

    #[test]
    fn set_metadata_without_ttl_lifts_the_engine_deadline() {
        let clock = SimClock::new(1_000_000);
        let store = GdprStore::open(
            CompliancePolicy::strict(),
            StoreConfig::in_memory()
                .aof_in_memory()
                .clock(clock.clone()),
            Box::new(MemorySink::new()),
        )
        .unwrap();
        store.grant(Grant::new("app", "billing"));
        store
            .put(&ctx(), "k", b"v".to_vec(), meta().with_ttl_millis(5_000))
            .unwrap();
        // Lift retention: no deadline in the new metadata.
        store.set_metadata(&ctx(), "k", meta()).unwrap();
        clock.advance_millis(6_000);
        store.tick().unwrap();
        assert_eq!(
            store.get(&ctx(), "k").unwrap(),
            Some(b"v".to_vec()),
            "value must survive its old deadline once retention is lifted"
        );
        assert!(store.load_metadata("k").unwrap().is_some());
    }

    #[test]
    fn has_grant_follows_policy_and_acl() {
        let store = GdprStore::open_in_memory(CompliancePolicy::strict()).unwrap();
        assert!(!store.has_grant("app", "billing"));
        store.grant(Grant::new("app", "billing"));
        assert!(store.has_grant("app", "billing"));
        assert!(!store.has_grant("app", "marketing"));
        // Without access-control enforcement every session is acceptable.
        let open = GdprStore::open_in_memory(CompliancePolicy::unmodified()).unwrap();
        assert!(open.has_grant("anyone", "anything"));
    }

    #[test]
    fn revoke_closes_access() {
        let store = permissive_store();
        store.put(&ctx(), "k", b"v".to_vec(), meta()).unwrap();
        assert_eq!(store.revoke("app", "billing"), 1);
        assert!(store.get(&ctx(), "k").is_err());
    }

    #[test]
    fn hot_cache_serves_repeated_gets_and_invalidates_on_mutation() {
        let store = permissive_store();
        assert!(store.hot_cache_enabled());
        store.put(&ctx(), "k", b"v1".to_vec(), meta()).unwrap();
        // First read misses and admits; the second must hit.
        assert_eq!(store.get(&ctx(), "k").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(store.get(&ctx(), "k").unwrap(), Some(b"v1".to_vec()));
        let stats = store.stats();
        assert!(stats.cache_admissions >= 1, "{stats:?}");
        assert!(stats.cache_hits >= 1, "{stats:?}");
        // Overwrite: the cached v1 must not survive the put bracket.
        store.put(&ctx(), "k", b"v2".to_vec(), meta()).unwrap();
        assert_eq!(store.get(&ctx(), "k").unwrap(), Some(b"v2".to_vec()));
        assert!(store.stats().cache_invalidations >= 1);
        // Delete: no hot copy may outlive the key.
        store.delete(&ctx(), "k").unwrap();
        assert_eq!(store.get(&ctx(), "k").unwrap(), None);
    }

    #[test]
    fn hot_cache_never_serves_after_erasure() {
        let store = permissive_store();
        store.put(&ctx(), "k", b"secret".to_vec(), meta()).unwrap();
        // Heat the key into the hot tier.
        for _ in 0..4 {
            store.get(&ctx(), "k").unwrap();
        }
        assert!(store.stats().cache_hits >= 1);
        store.right_to_erasure(&ctx(), "alice").unwrap();
        assert_eq!(
            store.get(&ctx(), "k").unwrap(),
            None,
            "erased value served from the hot tier"
        );
    }

    #[test]
    fn hot_cache_respects_objections_recorded_after_admission() {
        let store = permissive_store();
        store.grant(Grant::new("app", "analytics"));
        let m = meta().with_purpose("analytics");
        store.put(&ctx(), "k", b"v".to_vec(), m).unwrap();
        let analytics = AccessContext::new("app", "analytics");
        // Admit under the analytics purpose, then object to it.
        store.get(&analytics, "k").unwrap();
        store.get(&analytics, "k").unwrap();
        store
            .right_to_object(&analytics, "alice", "analytics")
            .unwrap();
        assert!(
            store.get(&analytics, "k").is_err(),
            "objection must not be bypassed by the hot tier"
        );
        // The whitelisted purpose still reads fine.
        assert_eq!(store.get(&ctx(), "k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn hot_cache_entries_do_not_survive_ttl_fire() {
        let clock = SimClock::new(1_000_000);
        let store = GdprStore::open(
            CompliancePolicy::strict(),
            StoreConfig::in_memory()
                .aof_in_memory()
                .clock(clock.clone()),
            Box::new(MemorySink::new()),
        )
        .unwrap();
        store.grant(Grant::new("app", "billing"));
        store
            .put(&ctx(), "k", b"v".to_vec(), meta().with_ttl_millis(5_000))
            .unwrap();
        store.get(&ctx(), "k").unwrap();
        store.get(&ctx(), "k").unwrap();
        clock.advance_millis(6_000);
        store.tick().unwrap();
        assert_eq!(
            store.get(&ctx(), "k").unwrap(),
            None,
            "expired value served from the hot tier"
        );
    }

    #[test]
    fn disabling_the_hot_cache_keeps_reads_correct() {
        let mut store = permissive_store();
        store.set_hot_cache(crate::hot_cache::HotCacheConfig::disabled());
        assert!(!store.hot_cache_enabled());
        store.put(&ctx(), "k", b"v".to_vec(), meta()).unwrap();
        store.get(&ctx(), "k").unwrap();
        store.get(&ctx(), "k").unwrap();
        let stats = store.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_admissions, 0);
        assert_eq!(store.get(&ctx(), "k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn rebuild_index_recovers_postings() {
        let store = permissive_store();
        store
            .put(&ctx(), "user:alice:email", b"v".to_vec(), meta())
            .unwrap();
        store.index.clear();
        assert!(store.index.keys_of_subject("alice").is_empty());
        store.rebuild_index().unwrap();
        assert_eq!(
            store.index.keys_of_subject("alice"),
            vec!["user:alice:email"]
        );
    }
}
