//! Reading and querying persisted audit trails.
//!
//! This is the Article 33/34 path: when a breach is suspected, the
//! controller has 72 hours to reconstruct *which* personal data was touched,
//! by whom, and when. [`parse_trail`] loads a trail, [`TrailQuery`] filters
//! it, and [`verify_trail`] checks the hash chain so the evidence itself is
//! trustworthy.

use crate::chain::{verify_chain, ChainedRecord};
use crate::log::parse_chained_line;
use crate::record::{AuditRecord, Operation, Outcome};
use crate::{AuditError, Result};

/// Parse a whole trail (one record per line) into chained records.
///
/// # Errors
///
/// Returns [`AuditError::Corrupt`] naming the first malformed line.
pub fn parse_trail(text: &str) -> Result<Vec<ChainedRecord>> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        match parse_chained_line(line) {
            Some(chained) => out.push(chained),
            None => {
                return Err(AuditError::Corrupt(format!(
                    "line {} is malformed: {line:?}",
                    idx + 1
                )))
            }
        }
    }
    Ok(out)
}

/// Verify the hash chain of a parsed trail (ignoring records persisted
/// without a digest, which cannot be verified).
///
/// # Errors
///
/// Returns [`AuditError::ChainBroken`] at the first mismatch.
pub fn verify_trail(records: &[ChainedRecord]) -> Result<()> {
    if records.iter().any(|r| r.digest.is_empty()) {
        // Unchained trails have nothing to verify.
        return Ok(());
    }
    verify_chain(records).map(|_| ())
}

/// Verify a trail that may span several process lifetimes: every restart of
/// the log begins a new hash chain (sequence numbers restart at zero), so
/// the trail is split at each `sequence == 0` boundary and every segment is
/// verified independently.
///
/// # Errors
///
/// Returns [`AuditError::ChainBroken`] at the first mismatching record of
/// any segment.
pub fn verify_trail_segments(records: &[ChainedRecord]) -> Result<usize> {
    let mut segments = 0usize;
    let mut start = 0usize;
    for i in 0..=records.len() {
        let boundary = i == records.len() || (i > start && records[i].record.sequence == 0);
        if boundary {
            if start < i {
                verify_trail(&records[start..i])?;
                segments += 1;
            }
            start = i;
        }
    }
    Ok(segments)
}

/// A filter over audit records, with every criterion optional.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrailQuery {
    /// Earliest timestamp (inclusive), in Unix milliseconds.
    pub since_ms: Option<u64>,
    /// Latest timestamp (inclusive), in Unix milliseconds.
    pub until_ms: Option<u64>,
    /// Only records touching this key.
    pub key: Option<String>,
    /// Only records about this data subject.
    pub subject: Option<String>,
    /// Only this kind of operation.
    pub operation: Option<Operation>,
    /// Only this outcome.
    pub outcome: Option<Outcome>,
    /// Only this actor.
    pub actor: Option<String>,
}

impl TrailQuery {
    /// A query with no criteria (matches everything).
    #[must_use]
    pub fn any() -> Self {
        TrailQuery::default()
    }

    /// Builder-style: restrict to a time window.
    #[must_use]
    pub fn between(mut self, since_ms: u64, until_ms: u64) -> Self {
        self.since_ms = Some(since_ms);
        self.until_ms = Some(until_ms);
        self
    }

    /// Builder-style: restrict to one data subject.
    #[must_use]
    pub fn subject(mut self, subject: &str) -> Self {
        self.subject = Some(subject.to_string());
        self
    }

    /// Builder-style: restrict to one key.
    #[must_use]
    pub fn key(mut self, key: &str) -> Self {
        self.key = Some(key.to_string());
        self
    }

    /// Builder-style: restrict to one operation kind.
    #[must_use]
    pub fn operation(mut self, operation: Operation) -> Self {
        self.operation = Some(operation);
        self
    }

    /// Builder-style: restrict to one outcome.
    #[must_use]
    pub fn outcome(mut self, outcome: Outcome) -> Self {
        self.outcome = Some(outcome);
        self
    }

    /// Builder-style: restrict to one actor.
    #[must_use]
    pub fn actor(mut self, actor: &str) -> Self {
        self.actor = Some(actor.to_string());
        self
    }

    /// Whether `record` satisfies every set criterion.
    #[must_use]
    pub fn matches(&self, record: &AuditRecord) -> bool {
        if let Some(since) = self.since_ms {
            if record.timestamp_ms < since {
                return false;
            }
        }
        if let Some(until) = self.until_ms {
            if record.timestamp_ms > until {
                return false;
            }
        }
        if let Some(key) = &self.key {
            if record.key.as_deref() != Some(key.as_str()) {
                return false;
            }
        }
        if let Some(subject) = &self.subject {
            if record.subject.as_deref() != Some(subject.as_str()) {
                return false;
            }
        }
        if let Some(op) = self.operation {
            if record.operation != op {
                return false;
            }
        }
        if let Some(outcome) = self.outcome {
            if record.outcome != outcome {
                return false;
            }
        }
        if let Some(actor) = &self.actor {
            if &record.actor != actor {
                return false;
            }
        }
        true
    }

    /// Apply the query to a parsed trail, returning matching records in
    /// trail order.
    #[must_use]
    pub fn select<'a>(&self, trail: &'a [ChainedRecord]) -> Vec<&'a AuditRecord> {
        trail
            .iter()
            .map(|c| &c.record)
            .filter(|r| self.matches(r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::AuditLog;
    use crate::policy::FlushPolicy;
    use crate::sink::MemorySink;

    fn build_trail() -> String {
        let sink = MemorySink::new();
        let view = sink.share();
        let mut log = AuditLog::new(Box::new(sink), FlushPolicy::Synchronous);
        let records = vec![
            AuditRecord::new(100, "app", Operation::Write)
                .key("user:1")
                .subject("alice"),
            AuditRecord::new(200, "app", Operation::Read)
                .key("user:1")
                .subject("alice"),
            AuditRecord::new(300, "intruder", Operation::Read)
                .key("user:2")
                .subject("bob")
                .outcome(Outcome::Denied),
            AuditRecord::new(400, "engine", Operation::Delete)
                .key("user:1")
                .subject("alice"),
        ];
        for r in records {
            log.record(r).unwrap();
        }
        view.lines().join("\n")
    }

    #[test]
    fn parse_and_verify_roundtrip() {
        let text = build_trail();
        let trail = parse_trail(&text).unwrap();
        assert_eq!(trail.len(), 4);
        verify_trail(&trail).unwrap();
    }

    #[test]
    fn corrupt_line_is_reported_with_its_number() {
        let mut text = build_trail();
        text.push_str("\nthis is not a record");
        match parse_trail(&text) {
            Err(AuditError::Corrupt(msg)) => assert!(msg.contains("line 5")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn tampered_trail_fails_verification() {
        let text = build_trail();
        let tampered = text.replace("alice", "mallory");
        let trail = parse_trail(&tampered).unwrap();
        assert!(verify_trail(&trail).is_err());
    }

    #[test]
    fn query_by_subject_and_time_window() {
        let trail = parse_trail(&build_trail()).unwrap();
        let q = TrailQuery::any().subject("alice").between(150, 450);
        let hits = q.select(&trail);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|r| r.subject.as_deref() == Some("alice")));
        assert!(hits.iter().all(|r| r.timestamp_ms >= 150));
    }

    #[test]
    fn query_by_outcome_finds_denied_access() {
        let trail = parse_trail(&build_trail()).unwrap();
        let denied = TrailQuery::any().outcome(Outcome::Denied).select(&trail);
        assert_eq!(denied.len(), 1);
        assert_eq!(denied[0].actor, "intruder");
    }

    #[test]
    fn query_by_operation_key_and_actor() {
        let trail = parse_trail(&build_trail()).unwrap();
        assert_eq!(
            TrailQuery::any()
                .operation(Operation::Delete)
                .select(&trail)
                .len(),
            1
        );
        assert_eq!(TrailQuery::any().key("user:1").select(&trail).len(), 3);
        assert_eq!(TrailQuery::any().actor("engine").select(&trail).len(), 1);
        assert_eq!(TrailQuery::any().select(&trail).len(), 4);
    }

    #[test]
    fn segmented_verification_accepts_restarted_trails() {
        // Two independent sessions appended to the same trail.
        let first = build_trail();
        let second = build_trail();
        let combined = format!("{first}\n{second}");
        let trail = parse_trail(&combined).unwrap();
        assert!(
            verify_trail(&trail).is_err(),
            "a naive verification sees a broken chain"
        );
        assert_eq!(verify_trail_segments(&trail).unwrap(), 2);
        // Tampering inside either segment is still detected.
        let tampered = combined.replace("bob", "mallory");
        let trail = parse_trail(&tampered).unwrap();
        assert!(verify_trail_segments(&trail).is_err());
    }

    #[test]
    fn empty_and_blank_lines_are_skipped() {
        let trail = parse_trail("\n\n").unwrap();
        assert!(trail.is_empty());
        verify_trail(&trail).unwrap();
    }
}
