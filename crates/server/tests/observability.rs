//! End-to-end observability tests: a real server on a real socket, a
//! real HTTP scrape of `/metrics`, and the wire-visible `SLOWLOG` /
//! `INFO` / `GDPR.STATS` surfaces.
//!
//! The Prometheus exposition is validated against the text-format
//! grammar (HELP/TYPE once per metric, well-formed sample lines, no
//! duplicate series, cumulative histogram buckets), and the histogram
//! counts scraped over HTTP are cross-checked against the latency lines
//! `GDPR.STATS` reports for the same traffic.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use gdpr_core::policy::CompliancePolicy;
use gdpr_core::store::GdprStore;
use gdpr_server::client::TcpRemoteClient;
use gdpr_server::dispatch::Dispatcher;
use gdpr_server::metrics::ServerMetrics;
use gdpr_server::metrics_http::MetricsServer;
use gdpr_server::tcp::{ServerConfig, TcpServer, TcpServerHandle, Transport};
use kvstore::config::StoreConfig;
use kvstore::store::KvStore;
use resp::command::GdprRequest;
use resp::Frame;

fn kv_server(transport: Transport, metrics: Arc<ServerMetrics>) -> TcpServerHandle {
    let dispatcher =
        Dispatcher::kv(KvStore::open(StoreConfig::in_memory()).unwrap()).with_metrics(metrics);
    let config = ServerConfig {
        transport,
        ..ServerConfig::default()
    };
    TcpServer::bind(dispatcher, "127.0.0.1:0", config).unwrap()
}

fn gdpr_server(transport: Transport) -> TcpServerHandle {
    let store = Arc::new(GdprStore::open_in_memory(CompliancePolicy::eventual()).unwrap());
    let dispatcher = Dispatcher::gdpr(store).with_metrics(Arc::new(ServerMetrics::new(-1, 16)));
    let config = ServerConfig {
        transport,
        ..ServerConfig::default()
    };
    TcpServer::bind(dispatcher, "127.0.0.1:0", config).unwrap()
}

fn http_get(addr: SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics listener");
    stream
        .write_all(format!("GET {target} HTTP/1.0\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn info_text(client: &mut TcpRemoteClient) -> String {
    match client.roundtrip(&Frame::command(["INFO"])).unwrap() {
        Frame::Bulk(bytes) => String::from_utf8(bytes).unwrap(),
        other => panic!("INFO returned {other:?}"),
    }
}

/// One parsed Prometheus sample: metric name, the raw label string
/// (normalized to `""` when absent), and the value.
struct Sample {
    name: String,
    labels: String,
    value: f64,
}

fn is_valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Parse a Prometheus text-exposition body, panicking on any grammar
/// violation: unknown line shapes, malformed names, HELP/TYPE repeated
/// for a name, samples for a name without a preceding TYPE, or an exact
/// duplicate (name, labels) series.
fn parse_prometheus(body: &str) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut helped = HashSet::new();
    let mut typed = HashSet::new();
    let mut seen_series = HashSet::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            assert!(is_valid_metric_name(name), "bad HELP name in {line:?}");
            assert!(helped.insert(name.to_string()), "duplicate HELP for {name}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            assert!(is_valid_metric_name(name), "bad TYPE name in {line:?}");
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ),
                "bad TYPE kind in {line:?}"
            );
            assert!(typed.insert(name.to_string()), "duplicate TYPE for {name}");
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment line {line:?}");
        // Sample line: `name value` or `name{labels} value`.
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line:?}");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric value in {line:?}"));
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unterminated labels in {line:?}"));
                (name, labels)
            }
            None => (series, ""),
        };
        assert!(is_valid_metric_name(name), "bad metric name in {line:?}");
        // The base name of a histogram's component series is the TYPE'd name.
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| typed.contains(*b))
            .unwrap_or(name);
        assert!(typed.contains(base), "sample {name} has no TYPE");
        assert!(helped.contains(base), "sample {name} has no HELP");
        assert!(
            seen_series.insert((name.to_string(), labels.to_string())),
            "duplicate series {name}{{{labels}}}"
        );
        samples.push(Sample {
            name: name.to_string(),
            labels: labels.to_string(),
            value,
        });
    }
    assert!(!samples.is_empty(), "empty exposition");
    samples
}

/// Check every `<name>_bucket` family: cumulative counts, a `+Inf`
/// bucket, and `+Inf == <name>_count` for the same label set.
fn check_histograms(samples: &[Sample]) {
    let mut buckets: HashMap<(String, String), Vec<(String, f64)>> = HashMap::new();
    for s in samples.iter().filter(|s| s.name.ends_with("_bucket")) {
        let base = s.name.trim_end_matches("_bucket").to_string();
        let mut le = String::new();
        let rest: Vec<&str> = s
            .labels
            .split(',')
            .filter(|part| match part.strip_prefix("le=\"") {
                Some(v) => {
                    le = v.trim_end_matches('"').to_string();
                    false
                }
                None => true,
            })
            .collect();
        assert!(!le.is_empty(), "bucket without le label: {}", s.labels);
        buckets
            .entry((base, rest.join(",")))
            .or_default()
            .push((le, s.value));
    }
    assert!(!buckets.is_empty(), "no histogram series in exposition");
    for ((base, labels), series) in buckets {
        let mut prev = 0.0;
        for (le, count) in &series {
            assert!(
                *count >= prev,
                "{base}{{{labels}}} bucket le={le} not cumulative"
            );
            prev = *count;
        }
        let (last_le, last_count) = series.last().unwrap();
        assert_eq!(last_le, "+Inf", "{base}{{{labels}}} missing +Inf");
        let count_name = format!("{base}_count");
        let total = samples
            .iter()
            .find(|s| s.name == count_name && s.labels == labels)
            .unwrap_or_else(|| panic!("{count_name}{{{labels}}} missing"))
            .value;
        assert_eq!(*last_count, total, "{base}{{{labels}}} +Inf != _count");
    }
}

/// Extract `count=N` from a `latency_*=p50=..,..,count=N` stats line.
fn stats_latency_count(lines: &[String], prefix: &str) -> u64 {
    let line = lines
        .iter()
        .find(|l| l.starts_with(prefix))
        .unwrap_or_else(|| panic!("no {prefix} line in GDPR.STATS"));
    line.rsplit("count=")
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("unparseable {line}"))
}

fn histogram_count(samples: &[Sample], name: &str, label: &str) -> u64 {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.contains(label))
        .unwrap_or_else(|| panic!("no {name} series with {label}"))
        .value as u64
}

#[test]
fn info_reports_server_and_latency_sections_on_both_transports() {
    for transport in [Transport::Reactor, Transport::Threads] {
        let server = kv_server(transport, Arc::new(ServerMetrics::new(-1, 16)));
        let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
        client.set("k", b"v").unwrap();
        assert_eq!(client.get("k").unwrap(), Some(b"v".to_vec()));

        let info = info_text(&mut client);
        assert!(info.contains("# Server"), "{transport}: {info}");
        assert!(
            info.contains(&format!("version:{}\n", env!("CARGO_PKG_VERSION"))),
            "{transport}"
        );
        assert!(info.contains("uptime_seconds:"), "{transport}");
        assert!(
            info.contains(&format!("transport:{transport}\n")),
            "{transport}: {info}"
        );
        assert!(info.contains("host_cores:"), "{transport}");
        assert!(info.contains("# Latency"), "{transport}");
        // The SET and GET above are already recorded by INFO time.
        assert!(info.contains("latency_cmd_read:"), "{transport}: {info}");
        assert!(info.contains("latency_cmd_write:"), "{transport}");
        assert!(
            info.contains("latency_stage_shard_lock_hold:"),
            "{transport}: {info}"
        );
        server.shutdown();
    }
}

#[test]
fn prometheus_scrape_parses_and_matches_gdpr_stats() {
    let server = gdpr_server(Transport::Reactor);
    let metrics = MetricsServer::start("127.0.0.1:0", server.dispatcher().clone()).unwrap();
    let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();

    // Traffic: a grant install + auth, writes and reads carrying GDPR
    // metadata defaults, and one subject-rights call.
    client
        .roundtrip(&Frame::command(["GDPR.GRANT", "app", "billing"]))
        .unwrap();
    client.auth("app", "billing").unwrap();
    for i in 0..7 {
        client.set(&format!("k{i}"), b"v").unwrap();
    }
    for i in 0..11 {
        client.get(&format!("k{i}")).unwrap();
    }
    let erased = client.erase_subject("nobody").unwrap();
    assert_eq!(erased, 0);

    // GDPR.STATS reports the same histograms as `latency_*=` lines.
    let stats_lines: Vec<String> = match client.gdpr(&GdprRequest::Stats).unwrap() {
        Frame::Array(items) => items
            .into_iter()
            .map(|f| match f {
                Frame::Bulk(b) => String::from_utf8(b).unwrap(),
                other => panic!("unexpected stats item {other:?}"),
            })
            .collect(),
        other => panic!("GDPR.STATS returned {other:?}"),
    };
    let stats_reads = stats_latency_count(&stats_lines, "latency_cmd_read=");
    let stats_writes = stats_latency_count(&stats_lines, "latency_cmd_write=");
    let stats_rights = stats_latency_count(&stats_lines, "latency_cmd_gdpr_right=");
    let stats_erase = stats_latency_count(&stats_lines, "latency_right_erase=");
    assert_eq!(stats_reads, 11);
    assert_eq!(stats_writes, 7);
    assert_eq!(stats_rights, 1);
    assert_eq!(stats_erase, 1);

    // A real HTTP scrape must parse per the exposition grammar and agree
    // with GDPR.STATS on every count for traffic that has stopped.
    let response = http_get(metrics.local_addr(), "/metrics");
    let (headers, body) = response.split_once("\r\n\r\n").expect("header split");
    assert!(headers.starts_with("HTTP/1.0 200 OK"), "{headers}");
    assert!(headers.contains("text/plain; version=0.0.4"), "{headers}");

    let samples = parse_prometheus(body);
    check_histograms(&samples);
    let prom =
        |label: &str| histogram_count(&samples, "gdpr_server_command_latency_seconds_count", label);
    assert_eq!(prom("family=\"read\""), stats_reads);
    assert_eq!(prom("family=\"write\""), stats_writes);
    assert_eq!(prom("family=\"gdpr_right\""), stats_rights);
    assert_eq!(
        histogram_count(
            &samples,
            "gdpr_right_latency_seconds_count",
            "right=\"erase\""
        ),
        stats_erase
    );
    // The transport label reflects the serving transport.
    assert!(
        samples
            .iter()
            .any(|s| s.name == "gdpr_server_command_latency_seconds_count"
                && s.labels.contains("transport=\"reactor\"")),
        "transport label missing"
    );
    // Counters from the pre-existing surfaces ride along.
    assert!(samples.iter().any(|s| s.name == "clients_connected"));
    assert!(samples.iter().any(|s| s.name == "gdpr_server_requests"));
    assert!(samples
        .iter()
        .any(|s| s.name == "engine_commands_processed"));

    metrics.shutdown();
    server.shutdown();
}

#[test]
fn slowlog_captures_slow_commands_and_honors_the_ring_bound() {
    // Threshold 0 logs every request; the ring keeps only 4.
    let server = kv_server(Transport::Threads, Arc::new(ServerMetrics::new(0, 4)));
    let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
    for i in 0..10 {
        client.set(&format!("key{i}"), b"v").unwrap();
    }

    let len = match client
        .roundtrip(&Frame::command(["SLOWLOG", "LEN"]))
        .unwrap()
    {
        Frame::Integer(n) => n,
        other => panic!("SLOWLOG LEN returned {other:?}"),
    };
    assert_eq!(len, 4, "ring bound holds");

    let entries = match client
        .roundtrip(&Frame::command(["SLOWLOG", "GET", "10"]))
        .unwrap()
    {
        Frame::Array(entries) => entries,
        other => panic!("SLOWLOG GET returned {other:?}"),
    };
    assert_eq!(entries.len(), 4);
    // Newest first: the LEN query itself, then the last three SETs, with
    // monotonically decreasing ids and the captured command text.
    let mut last_id = i64::MAX;
    for entry in &entries {
        let Frame::Array(fields) = entry else {
            panic!("entry shape {entry:?}");
        };
        assert_eq!(fields.len(), 4);
        let Frame::Integer(id) = fields[0] else {
            panic!("id shape")
        };
        assert!(id < last_id, "ids newest-first");
        last_id = id;
        assert!(matches!(fields[1], Frame::Integer(ts) if ts > 0));
        assert!(matches!(fields[2], Frame::Integer(d) if d >= 0));
    }
    let Frame::Array(newest) = &entries[0] else {
        panic!()
    };
    let Frame::Array(cmd) = &newest[3] else {
        panic!()
    };
    assert_eq!(cmd[0], Frame::Bulk(b"SLOWLOG".to_vec()));
    let Frame::Array(prev) = &entries[1] else {
        panic!()
    };
    let Frame::Array(cmd) = &prev[3] else {
        panic!()
    };
    assert_eq!(cmd[0], Frame::Bulk(b"SET".to_vec()));
    assert_eq!(cmd[1], Frame::Bulk(b"key9".to_vec()));

    // RESET clears the ring (only the RESET itself is re-captured).
    client
        .roundtrip(&Frame::command(["SLOWLOG", "RESET"]))
        .unwrap();
    let len = match client
        .roundtrip(&Frame::command(["SLOWLOG", "LEN"]))
        .unwrap()
    {
        Frame::Integer(n) => n,
        other => panic!("SLOWLOG LEN returned {other:?}"),
    };
    assert_eq!(len, 1, "ring holds only the RESET that followed the clear");
    server.shutdown();
}

#[test]
fn negative_threshold_disables_the_slowlog() {
    let server = kv_server(Transport::Threads, Arc::new(ServerMetrics::new(-1, 4)));
    let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
    for i in 0..5 {
        client.set(&format!("key{i}"), b"v").unwrap();
    }
    let len = match client
        .roundtrip(&Frame::command(["SLOWLOG", "LEN"]))
        .unwrap()
    {
        Frame::Integer(n) => n,
        other => panic!("SLOWLOG LEN returned {other:?}"),
    };
    assert_eq!(len, 0);
    server.shutdown();
}
