//! A Redis-like embedded key-value storage engine.
//!
//! This crate is the storage substrate for the reproduction of
//! *"Analyzing the Impact of GDPR on Storage Systems"* (HotStorage '19).
//! The paper retrofits Redis v4.0.11 into GDPR compliance and measures the
//! cost of each modification; this crate re-implements the Redis mechanisms
//! that those measurements depend on:
//!
//! * an in-memory dictionary of typed objects ([`object::Value`]) with the
//!   usual string/hash/list/set commands ([`commands::Command`]),
//! * the TTL subsystem with both Redis' **lazy probabilistic active-expiry
//!   cycle** and the paper's **strict indexed expiry** ([`expire`]), served
//!   by a **hierarchical timer wheel** deadline index (O(1) per TTL
//!   insert/reschedule; [`ttl_wheel`]),
//! * **append-only-file** persistence with `always` / `everysec` / `no`
//!   fsync policies and background-rewrite compaction ([`aof`]),
//! * point-in-time **snapshots** ([`snapshot`]),
//! * a pluggable **device layer** with a plain file device and an
//!   encrypting device that seals every chunk with ChaCha20-Poly1305 — the
//!   stand-in for LUKS full-disk encryption ([`device`]),
//! * a [`clock`] abstraction so that expiry experiments (Figure 2 of the
//!   paper, a three-hour wall-clock experiment at 128k keys) can run on a
//!   simulated clock in milliseconds.
//!
//! The top-level handle is [`store::KvStore`]; the GDPR compliance layer in
//! the `gdpr-core` crate wraps it.
//!
//! # Example
//!
//! ```
//! use kvstore::config::StoreConfig;
//! use kvstore::store::KvStore;
//!
//! # fn main() -> Result<(), kvstore::StoreError> {
//! let store = KvStore::open(StoreConfig::in_memory())?;
//! store.set("user:1:email", b"alice@example.com".to_vec())?;
//! assert_eq!(store.get("user:1:email")?, Some(b"alice@example.com".to_vec()));
//! store.expire_in("user:1:email", std::time::Duration::from_secs(3600))?;
//! assert!(store.ttl("user:1:email")?.is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aof;
pub mod clock;
pub mod commands;
pub mod config;
pub mod db;
pub mod device;
pub mod expire;
pub mod object;
pub mod serialize;
pub mod shard;
pub mod sharded_aof;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod ttl_wheel;

use std::error::Error;
use std::fmt;

/// Errors returned by the storage engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An operation was applied to a key holding the wrong type of value
    /// (the classic Redis `WRONGTYPE` error).
    WrongType {
        /// Key that was accessed.
        key: String,
        /// Type actually held by the key.
        actual: &'static str,
        /// Type expected by the operation.
        expected: &'static str,
    },
    /// An I/O error from the persistence layer.
    Io(std::io::Error),
    /// A cryptographic failure from the encrypted device layer.
    Crypto(gdpr_crypto::CryptoError),
    /// The append-only file or snapshot contained malformed data.
    Corrupt {
        /// What was being decoded.
        context: &'static str,
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A configuration value was invalid or inconsistent.
    Config(String),
    /// A command could not be parsed or had the wrong arity.
    InvalidCommand(String),
    /// A write was rejected because the keyspace is over the configured
    /// `maxmemory` ceiling and the eviction policy is `noeviction`
    /// (Redis' `-OOM` reply).
    Oom {
        /// Bytes currently resident in the rejecting shard.
        used: u64,
        /// That shard's slice of the `maxmemory` budget, in bytes.
        limit: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::WrongType {
                key,
                actual,
                expected,
            } => write!(
                f,
                "wrong type for key {key:?}: holds {actual}, operation expects {expected}"
            ),
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Crypto(e) => write!(f, "encryption error: {e}"),
            StoreError::Corrupt { context, detail } => {
                write!(f, "corrupt {context}: {detail}")
            }
            StoreError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            StoreError::InvalidCommand(msg) => write!(f, "invalid command: {msg}"),
            StoreError::Oom { used, limit } => write!(
                f,
                "command not allowed when used memory > 'maxmemory' (used={used}, limit={limit})"
            ),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<gdpr_crypto::CryptoError> for StoreError {
    fn from(e: gdpr_crypto::CryptoError) -> Self {
        StoreError::Crypto(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_covers_variants() {
        let errs: Vec<StoreError> = vec![
            StoreError::WrongType {
                key: "k".into(),
                actual: "hash",
                expected: "string",
            },
            StoreError::Io(std::io::Error::other("boom")),
            StoreError::Crypto(gdpr_crypto::CryptoError::TagMismatch),
            StoreError::Corrupt {
                context: "aof",
                detail: "bad magic".into(),
            },
            StoreError::Config("bad".into()),
            StoreError::InvalidCommand("arity".into()),
            StoreError::Oom {
                used: 2048,
                limit: 1024,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_source_is_preserved() {
        let e = StoreError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
