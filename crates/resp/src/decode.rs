//! Incremental RESP2 decoding.
//!
//! [`Decoder`] accumulates bytes as they arrive from a transport and yields
//! complete [`Frame`]s as soon as they are available — the shape a
//! streaming network server needs, and the reason the decoder keeps its own
//! buffer rather than requiring the whole message up front.

use bytes::{Buf, BytesMut};

use crate::{Frame, RespError};

/// Result alias for decoding operations.
pub type Result<T> = std::result::Result<T, RespError>;

/// An incremental frame decoder.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: BytesMut,
}

impl Decoder {
    /// Create an empty decoder.
    #[must_use]
    pub fn new() -> Self {
        Decoder {
            buf: BytesMut::new(),
        }
    }

    /// Append newly received bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-consumed bytes.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete frame. Returns `Ok(None)` if more
    /// bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`RespError::Protocol`] on malformed input. The buffer is
    /// left untouched after an error (the connection should be dropped).
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        let mut pos = 0usize;
        match parse_frame(&self.buf, &mut pos)? {
            Some(frame) => {
                self.buf.advance(pos);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }
}

/// Decode a single frame from a complete buffer.
///
/// # Errors
///
/// Returns [`RespError::Protocol`] if the buffer does not contain exactly
/// one well-formed frame.
pub fn decode_one(data: &[u8]) -> Result<Frame> {
    let mut pos = 0usize;
    match parse_frame(data, &mut pos)? {
        Some(frame) if pos == data.len() => Ok(frame),
        Some(_) => Err(RespError::Protocol(format!(
            "{} trailing bytes",
            data.len() - pos
        ))),
        None => Err(RespError::Protocol("incomplete frame".to_string())),
    }
}

/// Find the next CRLF starting at `from`; returns the index of the `\r`.
fn find_crlf(data: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i + 1 < data.len() {
        if data[i] == b'\r' && data[i + 1] == b'\n' {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn parse_line<'a>(data: &'a [u8], pos: &mut usize) -> Result<Option<&'a [u8]>> {
    match find_crlf(data, *pos) {
        Some(end) => {
            let line = &data[*pos..end];
            *pos = end + 2;
            Ok(Some(line))
        }
        None => Ok(None),
    }
}

fn parse_int(line: &[u8]) -> Result<i64> {
    std::str::from_utf8(line)
        .ok()
        .and_then(|s| s.parse::<i64>().ok())
        .ok_or_else(|| {
            RespError::Protocol(format!(
                "invalid integer {:?}",
                String::from_utf8_lossy(line)
            ))
        })
}

fn parse_frame(data: &[u8], pos: &mut usize) -> Result<Option<Frame>> {
    if *pos >= data.len() {
        return Ok(None);
    }
    let type_byte = data[*pos];
    *pos += 1;
    match type_byte {
        b'+' => {
            Ok(parse_line(data, pos)?
                .map(|l| Frame::Simple(String::from_utf8_lossy(l).into_owned())))
        }
        b'-' => {
            Ok(parse_line(data, pos)?
                .map(|l| Frame::Error(String::from_utf8_lossy(l).into_owned())))
        }
        b':' => match parse_line(data, pos)? {
            Some(line) => Ok(Some(Frame::Integer(parse_int(line)?))),
            None => Ok(None),
        },
        b'$' => {
            let Some(line) = parse_line(data, pos)? else {
                return Ok(None);
            };
            let len = parse_int(line)?;
            if len < 0 {
                return Ok(Some(Frame::Null));
            }
            let len = len as usize;
            if data.len() < *pos + len + 2 {
                return Ok(None);
            }
            let payload = data[*pos..*pos + len].to_vec();
            if &data[*pos + len..*pos + len + 2] != b"\r\n" {
                return Err(RespError::Protocol(
                    "bulk string missing terminator".to_string(),
                ));
            }
            *pos += len + 2;
            Ok(Some(Frame::Bulk(payload)))
        }
        b'*' => {
            let Some(line) = parse_line(data, pos)? else {
                return Ok(None);
            };
            let count = parse_int(line)?;
            if count < 0 {
                return Ok(Some(Frame::Null));
            }
            let mut items = Vec::with_capacity(count as usize);
            for _ in 0..count {
                match parse_frame(data, pos)? {
                    Some(frame) => items.push(frame),
                    None => return Ok(None),
                }
            }
            Ok(Some(Frame::Array(items)))
        }
        other => Err(RespError::Protocol(format!(
            "unknown type byte 0x{other:02x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_frame;

    #[test]
    fn roundtrip_all_frame_kinds() {
        let frames = vec![
            Frame::Simple("OK".into()),
            Frame::Error("ERR nope".into()),
            Frame::Integer(-12345),
            Frame::bulk("binary\r\nsafe"),
            Frame::Null,
            Frame::Array(vec![Frame::Integer(1), Frame::bulk("two"), Frame::Null]),
            Frame::Array(vec![]),
        ];
        for frame in frames {
            assert_eq!(
                decode_one(&encode_frame(&frame)).unwrap(),
                frame,
                "{frame:?}"
            );
        }
    }

    #[test]
    fn incremental_decoding_across_chunks() {
        let frame = Frame::command(["SET", "key", "a longer value to split"]);
        let bytes = encode_frame(&frame);
        let mut decoder = Decoder::new();
        for chunk in bytes.chunks(3) {
            decoder.feed(chunk);
        }
        assert_eq!(decoder.next_frame().unwrap(), Some(frame));
        assert_eq!(decoder.next_frame().unwrap(), None);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        let mut decoder = Decoder::new();
        decoder.feed(b"+OK\r\n:7\r\n$2\r\nhi\r\n");
        assert_eq!(
            decoder.next_frame().unwrap(),
            Some(Frame::Simple("OK".into()))
        );
        assert_eq!(decoder.next_frame().unwrap(), Some(Frame::Integer(7)));
        assert_eq!(decoder.next_frame().unwrap(), Some(Frame::bulk("hi")));
        assert_eq!(decoder.next_frame().unwrap(), None);
    }

    #[test]
    fn partial_frame_returns_none_until_complete() {
        let mut decoder = Decoder::new();
        decoder.feed(b"$10\r\nhello");
        assert_eq!(decoder.next_frame().unwrap(), None);
        decoder.feed(b"world\r\n");
        assert_eq!(
            decoder.next_frame().unwrap(),
            Some(Frame::bulk("helloworld"))
        );
    }

    #[test]
    fn protocol_errors() {
        assert!(decode_one(b"!bogus\r\n").is_err());
        assert!(decode_one(b":notanumber\r\n").is_err());
        assert!(decode_one(b"$3\r\nabcX\r").is_err());
        // Trailing garbage after a complete frame.
        assert!(decode_one(b"+OK\r\nextra").is_err());
        // Incomplete input to decode_one is an error (unlike the Decoder).
        assert!(decode_one(b"$10\r\nhel").is_err());
    }

    #[test]
    fn null_array_decodes_to_null() {
        assert_eq!(decode_one(b"*-1\r\n").unwrap(), Frame::Null);
        assert_eq!(decode_one(b"$-1\r\n").unwrap(), Frame::Null);
    }
}
