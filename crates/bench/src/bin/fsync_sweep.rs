//! Reproduces the **§4.1 monitoring/fsync numbers**: the cost of journaling
//! every interaction (reads included) under the three fsync policies.
//! The paper reports: fsync-always ⇒ ~5 % of baseline throughput,
//! fsync-everysec ⇒ ~30 % (a 6× improvement over always).
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin fsync_sweep [records=N] [ops=N]
//! ```

use bench::adapters::EmbeddedAdapter;
use bench::{arg_value, cleanup_scratch, scratch_dir};
use kvstore::aof::FsyncPolicy;
use kvstore::config::StoreConfig;
use kvstore::store::KvStore;
use ycsb::client::Driver;
use ycsb::workload::WorkloadSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records = arg_value(&args, "records").unwrap_or(5_000);
    let ops = arg_value(&args, "ops").unwrap_or(10_000);
    let dir = scratch_dir("fsync-sweep");

    println!("§4.1 reproduction — monitoring log fsync policy sweep (YCSB workload A)\n");
    println!(
        "{:<18} {:>14} {:>12} {:>10}",
        "configuration", "throughput", "fsyncs", "vs baseline"
    );

    let mut baseline = 0.0f64;
    let configs: Vec<(&str, Option<FsyncPolicy>)> = vec![
        ("no-monitoring", None),
        ("monitor+no-fsync", Some(FsyncPolicy::Never)),
        ("monitor+everysec", Some(FsyncPolicy::EverySec)),
        ("monitor+always", Some(FsyncPolicy::Always)),
    ];

    for (label, policy) in configs {
        let config = match policy {
            None => StoreConfig::in_memory(),
            Some(p) => StoreConfig::with_aof(dir.join(format!("{label}.aof")))
                .fsync(p)
                .log_reads(true),
        };
        let store = KvStore::open(config).expect("open engine");
        let mut adapter = EmbeddedAdapter::new(store);
        let mut driver = Driver::new(WorkloadSpec::workload_a(records, ops), 42);
        driver.run_load(&mut adapter).expect("load");
        let report = driver.run_transactions(&mut adapter).expect("run");
        let throughput = report.throughput();
        if baseline == 0.0 {
            baseline = throughput;
        }
        let fsyncs = adapter.store().aof_stats().map_or(0, |s| s.fsyncs);
        println!(
            "{:<18} {:>10.0} op/s {:>12} {:>9.1}%",
            label,
            throughput,
            fsyncs,
            throughput / baseline * 100.0
        );
    }

    println!("\npaper reference points: monitoring w/ sync fsync ≈5% of baseline; everysec ≈30% (6× better than sync)");
    cleanup_scratch(&dir);
}
