//! Engine configuration.
//!
//! The paper's experiments are all, at heart, configuration sweeps over the
//! same engine: AOF on/off, fsync policy, read-logging on/off (the
//! monitoring retrofit), encryption at rest on/off (LUKS), and the expiry
//! mode (stock lazy vs strict). [`StoreConfig`] captures exactly those
//! knobs so the benchmark harness can express each Figure 1 / Figure 2
//! configuration as a value.

use std::path::PathBuf;
use std::sync::Arc;

use crate::aof::FsyncPolicy;
use crate::clock::{Clock, SharedClock, SystemClock};
use crate::expire::{ActiveExpireConfig, ExpiryMode};
use crate::shard::DEFAULT_HASH_SEED;
use crate::ttl_wheel::DeadlineIndexKind;

/// Where the append-only file lives.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Persistence {
    /// No persistence at all (pure cache, the unmodified-Redis baseline for
    /// workloads that do not enable AOF).
    #[default]
    None,
    /// Append-only file held in memory (isolates CPU/fsync-call cost from
    /// disk latency; useful for micro-benchmarks and tests).
    AofInMemory,
    /// Append-only file on disk at the given path.
    AofFile(PathBuf),
}

/// At-rest encryption settings (the LUKS simulation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptionAtRest {
    /// Passphrase from which the device key is derived.
    pub passphrase: Vec<u8>,
}

/// What the engine does when a shard's memory footprint exceeds its slice
/// of [`StoreConfig::max_memory`] (the `maxmemory-policy` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Reject further writes with an OOM error (Redis' default).
    #[default]
    Noeviction,
    /// Sample a handful of keys and evict the least recently accessed
    /// (Redis `allkeys-lru`, with the same sampled approximation).
    SampledLru,
    /// Sample a handful of keys and evict one at random
    /// (Redis `allkeys-random`).
    SampledRandom,
}

impl EvictionPolicy {
    /// Parse a policy label as used by the `evict=` server flag.
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        match label.to_ascii_lowercase().as_str() {
            "noeviction" | "none" => Some(EvictionPolicy::Noeviction),
            "lru" | "allkeys-lru" | "sampled-lru" => Some(EvictionPolicy::SampledLru),
            "random" | "allkeys-random" | "sampled-random" => Some(EvictionPolicy::SampledRandom),
            _ => None,
        }
    }

    /// The stable label used on every stats surface (`INFO`, `GDPR.STATS`,
    /// Prometheus).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::Noeviction => "noeviction",
            EvictionPolicy::SampledLru => "sampled-lru",
            EvictionPolicy::SampledRandom => "sampled-random",
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Persistence mode for the AOF.
    pub persistence: Persistence,
    /// Fsync policy applied to the AOF (`appendfsync`).
    pub fsync: FsyncPolicy,
    /// Whether read commands are journaled too. Stock Redis only journals
    /// writes; the paper's GDPR monitoring retrofit journals *every*
    /// interaction (Article 30).
    pub log_reads: bool,
    /// Encrypt everything that reaches the device (LUKS simulation).
    pub encryption: Option<EncryptionAtRest>,
    /// Active-expiry behaviour.
    pub expiry_mode: ExpiryMode,
    /// Tunables of the probabilistic expiry cycle.
    pub active_expire: ActiveExpireConfig,
    /// Deadline-index implementation serving strict expiry: the
    /// hierarchical timer wheel by default, or the original BTree index
    /// (kept for differential testing and as a paper-faithful baseline).
    pub deadline_index: DeadlineIndexKind,
    /// Trigger an automatic AOF rewrite once the log holds at least this
    /// many records more than after the previous rewrite (0 disables).
    pub aof_rewrite_threshold_records: u64,
    /// Under `fsync=always`, coalesce concurrent appends to the same AOF
    /// segment into one group-commit fsync that all blocked writers
    /// observe. Disabling reverts to one fsync per record (the paper's
    /// unbatched real-time compliance point).
    pub aof_group_commit: bool,
    /// Bounded wait (milliseconds) a group-commit follower sleeps before
    /// re-checking whether it must take over as leader.
    pub aof_group_commit_wait_ms: u64,
    /// Maximum journal records retained in the in-memory replication
    /// backlog that connected replicas tail (0 disables tailing; a replica
    /// that falls further behind than this is forced into a full resync).
    pub repl_backlog_records: u64,
    /// Clock used by the engine (system clock by default; benchmarks inject
    /// a [`crate::clock::SimClock`]).
    pub clock: SharedClock,
    /// Seed for the engine's internal RNG (expiry sampling); `None` uses a
    /// nondeterministic seed.
    pub rng_seed: Option<u64>,
    /// Number of keyspace shards (rounded up to a power of two; minimum 1).
    /// Each shard owns its own dictionary, expiry state and lock, so
    /// operations on different shards run in parallel. The default of 1
    /// reproduces the paper's single-threaded Redis behaviour exactly.
    pub shards: usize,
    /// Seed of the key → shard hash. Deterministic by default so replay
    /// partitioning and tests are reproducible.
    pub shard_hash_seed: u64,
    /// Memory ceiling in bytes across the whole keyspace (0 = unlimited).
    /// Each shard is budgeted `max_memory / shard_count` so enforcement
    /// stays entirely under the shard's own lock.
    pub max_memory: u64,
    /// What to do when a shard exceeds its slice of `max_memory`.
    pub eviction_policy: EvictionPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            persistence: Persistence::None,
            fsync: FsyncPolicy::EverySec,
            log_reads: false,
            encryption: None,
            expiry_mode: ExpiryMode::LazyProbabilistic,
            active_expire: ActiveExpireConfig::default(),
            deadline_index: DeadlineIndexKind::from_env_or_default(),
            aof_rewrite_threshold_records: 0,
            aof_group_commit: true,
            aof_group_commit_wait_ms: 2,
            repl_backlog_records: 65_536,
            clock: Arc::new(SystemClock),
            rng_seed: None,
            shards: 1,
            shard_hash_seed: DEFAULT_HASH_SEED,
            max_memory: 0,
            eviction_policy: EvictionPolicy::Noeviction,
        }
    }
}

impl StoreConfig {
    /// A purely in-memory, persistence-free configuration (the unmodified
    /// baseline).
    #[must_use]
    pub fn in_memory() -> Self {
        StoreConfig::default()
    }

    /// Configuration matching stock Redis with `appendonly yes` and the
    /// default `everysec` fsync.
    #[must_use]
    pub fn with_aof(path: impl Into<PathBuf>) -> Self {
        StoreConfig {
            persistence: Persistence::AofFile(path.into()),
            ..StoreConfig::default()
        }
    }

    /// Builder-style: set the fsync policy.
    #[must_use]
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Builder-style: journal read commands as well (GDPR monitoring).
    #[must_use]
    pub fn log_reads(mut self, enabled: bool) -> Self {
        self.log_reads = enabled;
        self
    }

    /// Builder-style: enable at-rest encryption with the given passphrase.
    #[must_use]
    pub fn encrypted(mut self, passphrase: &[u8]) -> Self {
        self.encryption = Some(EncryptionAtRest {
            passphrase: passphrase.to_vec(),
        });
        self
    }

    /// Builder-style: select the expiry mode.
    #[must_use]
    pub fn expiry_mode(mut self, mode: ExpiryMode) -> Self {
        self.expiry_mode = mode;
        self
    }

    /// Builder-style: select the deadline-index implementation.
    #[must_use]
    pub fn deadline_index(mut self, kind: DeadlineIndexKind) -> Self {
        self.deadline_index = kind;
        self
    }

    /// Builder-style: use an in-memory AOF (CPU-cost-only persistence).
    #[must_use]
    pub fn aof_in_memory(mut self) -> Self {
        self.persistence = Persistence::AofInMemory;
        self
    }

    /// Builder-style: inject a clock.
    #[must_use]
    pub fn clock(mut self, clock: impl Clock + 'static) -> Self {
        self.clock = Arc::new(clock);
        self
    }

    /// Builder-style: seed the internal RNG for deterministic expiry
    /// sampling.
    #[must_use]
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = Some(seed);
        self
    }

    /// Builder-style: automatic AOF rewrite threshold in records.
    #[must_use]
    pub fn aof_rewrite_threshold(mut self, records: u64) -> Self {
        self.aof_rewrite_threshold_records = records;
        self
    }

    /// Builder-style: enable or disable group-commit batching of `always`
    /// fsyncs.
    #[must_use]
    pub fn group_commit(mut self, enabled: bool) -> Self {
        self.aof_group_commit = enabled;
        self
    }

    /// Builder-style: the bounded group-commit follower wait.
    #[must_use]
    pub fn group_commit_wait_ms(mut self, millis: u64) -> Self {
        self.aof_group_commit_wait_ms = millis;
        self
    }

    /// Builder-style: cap the in-memory replication backlog (records).
    #[must_use]
    pub fn repl_backlog(mut self, records: u64) -> Self {
        self.repl_backlog_records = records;
        self
    }

    /// Builder-style: shard the keyspace `shards` ways (rounded up to a
    /// power of two).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder-style: seed the key → shard hash.
    #[must_use]
    pub fn shard_hash_seed(mut self, seed: u64) -> Self {
        self.shard_hash_seed = seed;
        self
    }

    /// Builder-style: cap keyspace memory at `bytes` (0 = unlimited).
    #[must_use]
    pub fn max_memory(mut self, bytes: u64) -> Self {
        self.max_memory = bytes;
        self
    }

    /// Builder-style: select the over-`maxmemory` eviction policy.
    #[must_use]
    pub fn eviction_policy(mut self, policy: EvictionPolicy) -> Self {
        self.eviction_policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;

    #[test]
    fn default_matches_stock_redis_defaults() {
        let c = StoreConfig::default();
        assert_eq!(c.persistence, Persistence::None);
        assert_eq!(c.fsync, FsyncPolicy::EverySec);
        assert!(!c.log_reads);
        assert!(c.encryption.is_none());
        assert_eq!(c.expiry_mode, ExpiryMode::LazyProbabilistic);
        // Independent re-derivation (not a call to from_env_or_default,
        // which is what Default uses — that comparison would be a
        // tautology): the wheel unless GDPR_TTL_INDEX selects otherwise.
        let expected = std::env::var("GDPR_TTL_INDEX")
            .ok()
            .and_then(|label| DeadlineIndexKind::parse(label.trim()))
            .unwrap_or(DeadlineIndexKind::Wheel);
        assert_eq!(
            c.deadline_index, expected,
            "the default strict-expiry index is the wheel, overridable via GDPR_TTL_INDEX"
        );
    }

    #[test]
    fn deadline_index_builder() {
        let c = StoreConfig::in_memory().deadline_index(DeadlineIndexKind::BTree);
        assert_eq!(c.deadline_index, DeadlineIndexKind::BTree);
    }

    #[test]
    fn builders_compose() {
        let c = StoreConfig::with_aof("/tmp/x.aof")
            .fsync(FsyncPolicy::Always)
            .log_reads(true)
            .encrypted(b"pw")
            .expiry_mode(ExpiryMode::Strict)
            .rng_seed(7)
            .aof_rewrite_threshold(1_000)
            .clock(SimClock::new(5));
        assert_eq!(
            c.persistence,
            Persistence::AofFile(PathBuf::from("/tmp/x.aof"))
        );
        assert_eq!(c.fsync, FsyncPolicy::Always);
        assert!(c.log_reads);
        assert!(c.encryption.is_some());
        assert_eq!(c.expiry_mode, ExpiryMode::Strict);
        assert_eq!(c.rng_seed, Some(7));
        assert_eq!(c.aof_rewrite_threshold_records, 1_000);
        assert_eq!(c.clock.now_millis(), 5);
    }

    #[test]
    fn group_commit_builders() {
        let c = StoreConfig::default();
        assert!(c.aof_group_commit, "group commit is on by default");
        assert_eq!(c.aof_group_commit_wait_ms, 2);
        let c = StoreConfig::in_memory()
            .group_commit(false)
            .group_commit_wait_ms(7);
        assert!(!c.aof_group_commit);
        assert_eq!(c.aof_group_commit_wait_ms, 7);
    }

    #[test]
    fn in_memory_aof_builder() {
        let c = StoreConfig::in_memory().aof_in_memory();
        assert_eq!(c.persistence, Persistence::AofInMemory);
    }

    #[test]
    fn memory_builders() {
        let c = StoreConfig::default();
        assert_eq!(c.max_memory, 0, "default is unlimited, like stock Redis");
        assert_eq!(c.eviction_policy, EvictionPolicy::Noeviction);
        let c = StoreConfig::in_memory()
            .max_memory(1 << 20)
            .eviction_policy(EvictionPolicy::SampledLru);
        assert_eq!(c.max_memory, 1 << 20);
        assert_eq!(c.eviction_policy, EvictionPolicy::SampledLru);
    }

    #[test]
    fn eviction_policy_labels_round_trip() {
        for p in [
            EvictionPolicy::Noeviction,
            EvictionPolicy::SampledLru,
            EvictionPolicy::SampledRandom,
        ] {
            assert_eq!(EvictionPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(
            EvictionPolicy::parse("LRU"),
            Some(EvictionPolicy::SampledLru)
        );
        assert_eq!(
            EvictionPolicy::parse("allkeys-random"),
            Some(EvictionPolicy::SampledRandom)
        );
        assert_eq!(EvictionPolicy::parse("bogus"), None);
    }

    #[test]
    fn shard_builders() {
        let c = StoreConfig::default();
        assert_eq!(c.shards, 1, "default is the paper-faithful single shard");
        assert_eq!(c.shard_hash_seed, DEFAULT_HASH_SEED);
        let c = StoreConfig::in_memory().shards(6).shard_hash_seed(42);
        assert_eq!(c.shards, 6, "rounding happens at router construction");
        assert_eq!(c.shard_hash_seed, 42);
    }
}
