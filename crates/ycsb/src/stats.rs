//! Measurement: latency histograms and run reports.
//!
//! The histogram itself now lives in the shared observability crate
//! (`obs::hist`) so the live server and this benchmark driver report
//! through one bucketing scheme; it is re-exported here unchanged.

use std::time::Duration;

pub use obs::hist::LatencyHistogram;

/// The result of one benchmark phase (load or transactions).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Label of the phase ("Load-A", "A", …).
    pub phase: String,
    /// Operations completed.
    pub operations: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Wall-clock time of the phase.
    pub elapsed: Duration,
    /// Latency distribution across all operations.
    pub latency: LatencyHistogram,
}

impl RunReport {
    /// Throughput in operations per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.operations as f64 / secs
        }
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{:<8} {:>9} ops in {:>8.3}s  → {:>10.0} ops/s   p50={}µs p95={}µs p99={}µs max={}µs{}",
            self.phase,
            self.operations,
            self.elapsed.as_secs_f64(),
            self.throughput(),
            self.latency.percentile_micros(0.50),
            self.latency.percentile_micros(0.95),
            self.latency.percentile_micros(0.99),
            self.latency.max_micros(),
            if self.errors > 0 {
                format!("  ({} errors)", self.errors)
            } else {
                String::new()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_report_throughput_and_summary() {
        let mut latency = LatencyHistogram::new();
        latency.record(Duration::from_micros(100));
        let report = RunReport {
            phase: "A".into(),
            operations: 10_000,
            errors: 2,
            elapsed: Duration::from_secs(2),
            latency,
        };
        assert!((report.throughput() - 5_000.0).abs() < 1e-9);
        let s = report.summary();
        assert!(s.contains("ops/s"));
        assert!(s.contains("errors"));
    }

    #[test]
    fn zero_elapsed_gives_zero_throughput() {
        let report = RunReport {
            phase: "x".into(),
            operations: 5,
            errors: 0,
            elapsed: Duration::ZERO,
            latency: LatencyHistogram::new(),
        };
        assert_eq!(report.throughput(), 0.0);
    }
}
