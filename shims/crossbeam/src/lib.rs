//! Offline stand-in for `crossbeam`, providing the bounded-channel subset
//! the async audit writer uses, backed by `std::sync::mpsc`.

#![forbid(unsafe_code)]

/// Multi-producer, single-consumer channels.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (back-pressure when full).
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            self.inner
                .send(message)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.try_recv().map_err(|_| RecvError)
        }
    }

    /// Create a bounded channel with the given capacity.
    #[must_use]
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn roundtrip_across_threads() {
        let (tx, rx) = bounded::<u32>(4);
        let handle = std::thread::spawn(move || {
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        });
        for v in 1..=10 {
            tx.send(v).unwrap();
        }
        drop(tx);
        assert_eq!(handle.join().unwrap(), 55);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
