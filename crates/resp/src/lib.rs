//! RESP2 — the REdis Serialization Protocol.
//!
//! The paper measures the in-transit encryption overhead (Stunnel TLS
//! proxies in front of Redis) with YCSB clients talking to the server over
//! the network. To reproduce that data path, the `netsim` crate moves
//! RESP-encoded requests and replies through a simulated link; this crate
//! provides the wire format: [`Frame`] values, an incremental
//! [`decode::Decoder`], an [`encode`] module, and a typed
//! [`command::WireCommand`] layer that maps RESP arrays to the engine's
//! command set.
//!
//! # Example
//!
//! ```
//! use resp::{Frame, encode::encode_frame, decode::Decoder};
//!
//! let frame = Frame::Array(vec![
//!     Frame::Bulk(b"SET".to_vec()),
//!     Frame::Bulk(b"user:1".to_vec()),
//!     Frame::Bulk(b"alice".to_vec()),
//! ]);
//! let bytes = encode_frame(&frame);
//! let mut decoder = Decoder::new();
//! decoder.feed(&bytes);
//! assert_eq!(decoder.next_frame().unwrap(), Some(frame));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod command;
pub mod decode;
pub mod encode;
pub mod repl;

use std::error::Error;
use std::fmt;

/// A RESP2 protocol value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// `+OK\r\n` — a simple (non-binary-safe) string.
    Simple(String),
    /// `-ERR ...\r\n` — an error string.
    Error(String),
    /// `:42\r\n` — a signed 64-bit integer.
    Integer(i64),
    /// `$5\r\nhello\r\n` — a binary-safe bulk string.
    Bulk(Vec<u8>),
    /// `$-1\r\n` — the RESP2 null bulk string.
    Null,
    /// `*N\r\n...` — an array of frames.
    Array(Vec<Frame>),
}

impl Frame {
    /// Build a bulk frame from anything byte-like.
    pub fn bulk(data: impl Into<Vec<u8>>) -> Self {
        Frame::Bulk(data.into())
    }

    /// Build a command array from string-ish parts.
    pub fn command<I, S>(parts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Vec<u8>>,
    {
        Frame::Array(parts.into_iter().map(|p| Frame::Bulk(p.into())).collect())
    }

    /// Approximate serialized size in bytes (used by the bandwidth model in
    /// `netsim` without having to re-encode).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        match self {
            Frame::Simple(s) | Frame::Error(s) => s.len() + 3,
            Frame::Integer(_) => 16,
            Frame::Bulk(b) => b.len() + 16,
            Frame::Null => 5,
            Frame::Array(items) => 16 + items.iter().map(Frame::wire_len).sum::<usize>(),
        }
    }
}

/// Errors produced while decoding or interpreting RESP data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RespError {
    /// The input is not valid RESP (unknown type byte, bad integer, …).
    Protocol(String),
    /// A command array was structurally valid RESP but not a command we
    /// understand (unknown name or wrong arity).
    InvalidCommand(String),
}

impl fmt::Display for RespError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RespError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            RespError::InvalidCommand(msg) => write!(f, "invalid command: {msg}"),
        }
    }
}

impl Error for RespError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_constructors() {
        assert_eq!(Frame::bulk("abc"), Frame::Bulk(b"abc".to_vec()));
        let cmd = Frame::command(["GET", "k"]);
        assert_eq!(
            cmd,
            Frame::Array(vec![
                Frame::Bulk(b"GET".to_vec()),
                Frame::Bulk(b"k".to_vec())
            ])
        );
    }

    #[test]
    fn wire_len_is_positive_and_monotonic() {
        let small = Frame::bulk("ab").wire_len();
        let big = Frame::bulk(vec![0u8; 1000]).wire_len();
        assert!(big > small);
        assert!(Frame::Null.wire_len() > 0);
        assert!(Frame::command(["SET", "k", "v"]).wire_len() > Frame::bulk("SET").wire_len());
    }

    #[test]
    fn error_display() {
        assert!(!RespError::Protocol("x".into()).to_string().is_empty());
        assert!(!RespError::InvalidCommand("y".into()).to_string().is_empty());
    }
}
