//! Strict-expiry scaling sweep: key count × TTL distribution × deadline
//! index (timer wheel vs BTree baseline), measuring the three costs the
//! index swap targets:
//!
//! * **insert** — registering a TTL on a key that has none (the cost every
//!   TTL'd write pays under the shard lock);
//! * **reschedule** — overwriting an existing TTL (the wheel tombstones in
//!   O(1); the BTree rebalances twice);
//! * **tick** — the 100 ms strict sweep itself, split into steady-state
//!   ticks and a final bulk drain of everything still pending.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin expiry_scaling \
//!     [maxkeys=N] [ticks=N] [reps=N] [seed=N]
//! ```
//!
//! Each cell runs `reps` times (default 1) and reports the per-metric
//! minimum — the noise-resistant estimator for shared hosts, where a
//! single run can be perturbed by tens of percent.
//!
//! Key counts sweep ×10 from 10 000 up to `maxkeys` (default 1 000 000 —
//! the ROADMAP's "millions of TTL'd keys" point). Emits a human table and
//! writes `BENCH_expiry_scaling.json` (with `host_cores` recorded; the
//! workload is single-threaded on a simulated clock, so results are about
//! index cost, not core scaling).

use std::sync::Arc;
use std::time::Instant;

use bench::arg_value;
use kvstore::clock::SimClock;
use kvstore::db::Db;
use kvstore::expire::{run_expire_cycle, ActiveExpireConfig, ExpiryMode};
use kvstore::ttl_wheel::DeadlineIndexKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How TTLs are assigned across the keyspace.
#[derive(Clone, Copy)]
struct TtlDistribution {
    label: &'static str,
    /// TTL in ms for key `i` of `total`.
    assign: fn(&mut StdRng, usize, usize) -> u64,
}

/// The paper's Figure 2 mix: 20 % at 5 minutes, 80 % at 5 days.
fn figure2_ttl(_rng: &mut StdRng, i: usize, total: usize) -> u64 {
    if i < total / 5 {
        5 * 60 * 1_000
    } else {
        5 * 24 * 3_600 * 1_000
    }
}

/// Uniformly random deadlines within one hour: every tick expires a slice.
fn uniform_1h_ttl(rng: &mut StdRng, _i: usize, _total: usize) -> u64 {
    rng.gen_range(1_000..3_600_000)
}

/// Everything expires at the same instant: the densest possible slot.
fn burst_ttl(_rng: &mut StdRng, _i: usize, _total: usize) -> u64 {
    60_000
}

const DISTRIBUTIONS: [TtlDistribution; 3] = [
    TtlDistribution {
        label: "figure2",
        assign: figure2_ttl,
    },
    TtlDistribution {
        label: "uniform-1h",
        assign: uniform_1h_ttl,
    },
    TtlDistribution {
        label: "burst",
        assign: burst_ttl,
    },
];

struct Cell {
    index: DeadlineIndexKind,
    dist: &'static str,
    keys: usize,
    insert_ns_per_key: f64,
    reschedule_ns_per_op: f64,
    steady_ticks: u64,
    steady_tick_avg_us: f64,
    steady_expired: u64,
    drain_ms: f64,
    drain_expired: u64,
    cascades: u64,
    stale_dropped: u64,
    overflow_entries_peak: u64,
}

fn run_cell(
    kind: DeadlineIndexKind,
    dist: TtlDistribution,
    keys: usize,
    seed: u64,
    ticks: u64,
) -> Cell {
    let clock = SimClock::new(0);
    let mut db = Db::with_deadline_index(Arc::new(clock.clone()), kind);
    let mut rng = StdRng::seed_from_u64(seed);

    // Keys exist before the measured phase so `insert` times TTL indexing,
    // not dictionary population.
    for i in 0..keys {
        db.set(&format!("user{i:08}"), vec![0u8; 8]);
    }
    let ttls: Vec<u64> = (0..keys)
        .map(|i| (dist.assign)(&mut rng, i, keys))
        .collect();

    let t0 = Instant::now();
    for (i, ttl) in ttls.iter().enumerate() {
        db.expire_in_millis(&format!("user{i:08}"), *ttl);
    }
    let insert_ns_per_key = t0.elapsed().as_nanos() as f64 / keys as f64;

    // Reschedule a fifth of the keys to a fresh deadline (the hot path the
    // wheel optimises: every write to a TTL'd key replaces its deadline).
    let resched_ops = keys / 5;
    let t0 = Instant::now();
    for _ in 0..resched_ops {
        let i = rng.gen_range(0..keys);
        let ttl = (dist.assign)(&mut rng, i, keys);
        db.expire_in_millis(&format!("user{i:08}"), ttl);
    }
    let reschedule_ns_per_op = t0.elapsed().as_nanos() as f64 / resched_ops.max(1) as f64;
    let overflow_entries_peak = db.deadline_index_stats().overflow_entries;

    // Steady state: 100 ms strict cycles, as the engine tick runs them.
    let config = ActiveExpireConfig::default();
    let mut steady_expired = 0u64;
    let t0 = Instant::now();
    for _ in 0..ticks {
        clock.advance_millis(config.period_ms);
        let outcome = run_expire_cycle(&mut db, ExpiryMode::Strict, &config, &mut rng);
        steady_expired += outcome.removed.len() as u64;
    }
    let steady = t0.elapsed();

    // Drain: jump past every remaining deadline and sweep the backlog in
    // one cycle (the mass-expiry shape of a retention enforcement pass).
    clock.advance_millis(6 * 24 * 3_600 * 1_000);
    let t0 = Instant::now();
    let outcome = run_expire_cycle(&mut db, ExpiryMode::Strict, &config, &mut rng);
    let drain = t0.elapsed();
    let drain_expired = outcome.removed.len() as u64;
    assert_eq!(
        steady_expired + drain_expired,
        keys as u64,
        "every TTL'd key must expire exactly once ({kind:?}, {}, {keys})",
        dist.label
    );
    assert_eq!(db.pending_expired_len(), 0);

    let stats = db.deadline_index_stats();
    Cell {
        index: kind,
        dist: dist.label,
        keys,
        insert_ns_per_key,
        reschedule_ns_per_op,
        steady_ticks: ticks,
        steady_tick_avg_us: steady.as_micros() as f64 / ticks.max(1) as f64,
        steady_expired,
        drain_ms: drain.as_secs_f64() * 1_000.0,
        drain_expired,
        cascades: stats.cascades,
        stale_dropped: stats.stale_dropped,
        overflow_entries_peak,
    }
}

/// Fold repeated runs of one cell into per-metric minima.
fn min_cell(mut runs: Vec<Cell>) -> Cell {
    let mut best = runs.pop().expect("at least one rep");
    for run in runs {
        best.insert_ns_per_key = best.insert_ns_per_key.min(run.insert_ns_per_key);
        best.reschedule_ns_per_op = best.reschedule_ns_per_op.min(run.reschedule_ns_per_op);
        best.steady_tick_avg_us = best.steady_tick_avg_us.min(run.steady_tick_avg_us);
        best.drain_ms = best.drain_ms.min(run.drain_ms);
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_keys = arg_value(&args, "maxkeys").unwrap_or(1_000_000) as usize;
    // 3 500 × 100 ms covers Figure 2's 5-minute wave inside steady state.
    let ticks = arg_value(&args, "ticks").unwrap_or(3_500);
    let reps = arg_value(&args, "reps").unwrap_or(1).max(1);
    let seed = arg_value(&args, "seed").unwrap_or(42);

    let cores = bench::host_cores();
    println!(
        "expiry_scaling — strict-expiry index sweep, maxkeys={max_keys}, ticks={ticks}, cores={cores}"
    );

    let mut key_axis = Vec::new();
    let mut n = 10_000usize;
    while n <= max_keys {
        key_axis.push(n);
        n *= 10;
    }
    if key_axis.is_empty() {
        key_axis.push(max_keys.max(1));
    }

    let mut cells = Vec::new();
    for &keys in &key_axis {
        for dist in DISTRIBUTIONS {
            for kind in [DeadlineIndexKind::Wheel, DeadlineIndexKind::BTree] {
                let runs: Vec<Cell> = (0..reps)
                    .map(|_| run_cell(kind, dist, keys, seed, ticks))
                    .collect();
                let cell = min_cell(runs);
                println!(
                    "  {:<6} {:<10} keys={:<8} insert {:>7.0} ns/key   resched {:>7.0} ns/op   \
                     steady tick {:>9.1} us   drain {:>8.1} ms ({} keys)",
                    cell.index,
                    cell.dist,
                    cell.keys,
                    cell.insert_ns_per_key,
                    cell.reschedule_ns_per_op,
                    cell.steady_tick_avg_us,
                    cell.drain_ms,
                    cell.drain_expired,
                );
                cells.push(cell);
            }
        }
    }

    // Headlines at the top key count: the acceptance trajectory.
    let top = *key_axis.last().unwrap();
    let pick = |kind: DeadlineIndexKind, dist: &str| {
        cells
            .iter()
            .find(|c| c.index == kind && c.dist == dist && c.keys == top)
    };
    for dist in DISTRIBUTIONS {
        if let (Some(wheel), Some(btree)) = (
            pick(DeadlineIndexKind::Wheel, dist.label),
            pick(DeadlineIndexKind::BTree, dist.label),
        ) {
            println!(
                "\n{} @ {top} keys: insert btree/wheel = {:.2}x   resched = {:.2}x   \
                 steady tick = {:.2}x   drain = {:.2}x",
                dist.label,
                btree.insert_ns_per_key / wheel.insert_ns_per_key,
                btree.reschedule_ns_per_op / wheel.reschedule_ns_per_op,
                btree.steady_tick_avg_us / wheel.steady_tick_avg_us,
                btree.drain_ms / wheel.drain_ms,
            );
        }
    }

    let json = render_json(seed, ticks, reps, &cells);
    std::fs::write("BENCH_expiry_scaling.json", &json).expect("write BENCH_expiry_scaling.json");
    println!("\nwrote BENCH_expiry_scaling.json ({} cells)", cells.len());
}

fn render_json(seed: u64, ticks: u64, reps: u64, cells: &[Cell]) -> String {
    let mut out = bench::json_envelope("expiry_scaling");
    out.push_str("  \"store\": \"kvstore Db, strict expiry, simulated clock\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"reps_min_of\": {reps},\n"));
    out.push_str(&format!("  \"steady_ticks\": {ticks},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"index\": \"{}\", \"dist\": \"{}\", \"keys\": {}, \
             \"insert_ns_per_key\": {:.1}, \"reschedule_ns_per_op\": {:.1}, \
             \"steady_ticks\": {}, \"steady_tick_avg_us\": {:.2}, \"steady_expired\": {}, \
             \"drain_ms\": {:.2}, \"drain_expired\": {}, \"cascades\": {}, \
             \"stale_dropped\": {}, \"overflow_entries_peak\": {}}}{}\n",
            cell.index,
            cell.dist,
            cell.keys,
            cell.insert_ns_per_key,
            cell.reschedule_ns_per_op,
            cell.steady_ticks,
            cell.steady_tick_avg_us,
            cell.steady_expired,
            cell.drain_ms,
            cell.drain_expired,
            cell.cascades,
            cell.stale_dropped,
            cell.overflow_entries_peak,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
