//! Replication propagation-window benchmark: how long does a write — and,
//! GDPR-critically, an **erasure** — take to reach a replica?
//!
//! The paper's compliance obligations are obligations per *copy*; a
//! deployment serving reads from replicas is only compliant within the
//! window this benchmark measures. A real TCP primary streams its journal
//! to in-process replica runners; per cell (replica shard count sweep) we
//! record:
//!
//! * full-sync time (snapshot transfer + restore + index rebuild);
//! * write propagation: per burst of writes, the time from the last
//!   acknowledged write on the primary until the replica's applied
//!   sequence reaches the primary watermark (p50/p99 over bursts);
//! * erasure propagation: the time from `GDPR.ERASE` returning on the
//!   primary until every erased key *and its metadata shadow* is gone on
//!   the replica.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin repl_lag \
//!     [records=N] [bursts=N] [burst=N] [shards=N] [maxreplshards=N]
//! ```
//!
//! Emits a human table and writes `BENCH_repl_lag.json` (`host_cores`
//! recorded — on a single-core container primary, feeder and replica
//! timeshare one CPU, so windows are upper bounds).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::arg_value;
use gdpr_core::acl::Grant;
use gdpr_core::policy::CompliancePolicy;
use gdpr_core::store::GdprStore;
use gdpr_server::client::TcpRemoteClient;
use gdpr_server::dispatch::Dispatcher;
use gdpr_server::replication;
use gdpr_server::tcp::{ServerConfig, TcpServer};
use kvstore::config::StoreConfig;
use resp::command::GdprRequest;

const ACTOR: &str = "repl-bench";
const PURPOSE: &str = "benchmarking";

struct Cell {
    replica_shards: usize,
    full_sync_ms: f64,
    write_p50_ms: f64,
    write_p99_ms: f64,
    erase_ms: f64,
    records_streamed: u64,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn wait_for(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) -> Duration {
    let start = Instant::now();
    while !done() {
        assert!(start.elapsed() < deadline, "timed out: {what}");
        std::thread::sleep(Duration::from_micros(200));
    }
    start.elapsed()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records = arg_value(&args, "records").unwrap_or(5_000);
    let bursts = arg_value(&args, "bursts").unwrap_or(20);
    let burst = arg_value(&args, "burst").unwrap_or(100);
    let shards = arg_value(&args, "shards").unwrap_or(4) as usize;
    let max_repl_shards = arg_value(&args, "maxreplshards").unwrap_or(8);
    let cores = bench::host_cores();
    let deadline = Duration::from_secs(120);

    println!(
        "repl_lag — erasure/write propagation over a live stream, \
         records={records}, bursts={bursts}x{burst}, primary_shards={shards}, cores={cores}"
    );
    if cores == 1 {
        println!("  note: single-core host — all windows include timesharing overhead");
    }

    let mut cells = Vec::new();
    let mut replica_shards = 1usize;
    while replica_shards as u64 <= max_repl_shards.max(1) {
        // Fresh primary per cell.
        let store = Arc::new(
            GdprStore::open(
                CompliancePolicy::eventual(),
                StoreConfig::in_memory().aof_in_memory().shards(shards),
                Box::new(audit::sink::NullSink::new()),
            )
            .expect("open primary"),
        );
        store.grant(Grant::new(ACTOR, PURPOSE));
        let server = TcpServer::bind(
            Dispatcher::gdpr(Arc::clone(&store)),
            "127.0.0.1:0",
            ServerConfig {
                poll_interval: Duration::from_millis(1),
                ..ServerConfig::default()
            },
        )
        .expect("bind primary");
        let mut client = TcpRemoteClient::connect(server.local_addr()).expect("connect");
        client.auth(ACTOR, PURPOSE).expect("auth");

        // Preload the keyspace the full sync must carry.
        for i in 0..records {
            client
                .gdpr(&GdprRequest::Put {
                    key: format!("user:preload:{i:06}"),
                    subject: "preload".to_string(),
                    purposes: vec![PURPOSE.to_string()],
                    value: vec![0xab; 64],
                    ttl_ms: None,
                })
                .expect("preload put");
        }

        // Attach the replica and time the full sync.
        let replica_store = Arc::new(
            GdprStore::open(
                CompliancePolicy::eventual(),
                StoreConfig::in_memory()
                    .aof_in_memory()
                    .shards(replica_shards),
                Box::new(audit::sink::NullSink::new()),
            )
            .expect("open replica"),
        );
        let replica = Dispatcher::gdpr(Arc::clone(&replica_store));
        let handle = replication::start_replica(replica.clone(), &server.local_addr().to_string());
        let primary_engine = server.dispatcher().raw_engine();
        let full_sync = wait_for("full sync", deadline, || {
            let info = replica.replication().info();
            info.connected && info.lag_records == 0 && info.applied_seq > 0
        });

        // Write bursts: ack on the primary, then clock the replica catch-up.
        let mut burst_ms: Vec<f64> = Vec::with_capacity(bursts as usize);
        for b in 0..bursts {
            for i in 0..burst {
                client
                    .gdpr(&GdprRequest::Put {
                        key: format!("user:burst:{b:03}:{i:04}"),
                        subject: format!("burst{b:03}"),
                        purposes: vec![PURPOSE.to_string()],
                        value: vec![0xcd; 64],
                        ttl_ms: None,
                    })
                    .expect("burst put");
            }
            let target = primary_engine.replication_snapshot().map(|(_, wm)| wm);
            let target_seq = target.map_or(0, |wm| wm.last_seq);
            let elapsed = wait_for("burst propagation", deadline, || {
                replica.replication().info().applied_seq >= target_seq
            });
            burst_ms.push(elapsed.as_secs_f64() * 1e3);
        }

        // The erasure propagation window.
        let erased_subject = "burst000";
        let erase_start = Instant::now();
        let erased = client.erase_subject(erased_subject).expect("erase");
        assert_eq!(erased, burst, "every key of the subject erased");
        wait_for("erasure propagation", deadline, || {
            replica_store
                .keys_of_subject(erased_subject)
                .map(|keys| keys.is_empty())
                .unwrap_or(false)
                && replica
                    .raw_engine()
                    .get("__gdpr_meta__:user:burst:000:0000")
                    .map(|v| v.is_none())
                    .unwrap_or(false)
        });
        // The compliance window: ERASE issued on the primary → last copy
        // (value, metadata shadow, index posting) gone on the replica.
        let erase_ms = erase_start.elapsed().as_secs_f64() * 1e3;

        burst_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let info = replica.replication().info();
        let cell = Cell {
            replica_shards,
            full_sync_ms: full_sync.as_secs_f64() * 1e3,
            write_p50_ms: percentile(&burst_ms, 0.50),
            write_p99_ms: percentile(&burst_ms, 0.99),
            erase_ms,
            records_streamed: info.records_applied,
        };
        println!(
            "  replica_shards={:<2}  full_sync {:>8.1} ms   write p50 {:>7.2} ms  p99 {:>7.2} ms   \
             erase {:>7.2} ms   applied {}",
            cell.replica_shards,
            cell.full_sync_ms,
            cell.write_p50_ms,
            cell.write_p99_ms,
            cell.erase_ms,
            cell.records_streamed,
        );
        handle.stop();
        server.shutdown();
        cells.push(cell);
        replica_shards *= 2;
    }

    let json = render_json(records, bursts, burst, shards, &cells);
    std::fs::write("BENCH_repl_lag.json", &json).expect("write BENCH_repl_lag.json");
    println!("\nwrote BENCH_repl_lag.json ({} cells)", cells.len());
}

fn render_json(records: u64, bursts: u64, burst: u64, shards: usize, cells: &[Cell]) -> String {
    let mut out = bench::json_envelope("repl_lag");
    out.push_str("  \"transport\": \"tcp-loopback\",\n");
    out.push_str("  \"policy\": \"eventual\",\n");
    out.push_str(&format!("  \"preload_records\": {records},\n"));
    out.push_str(&format!("  \"bursts\": {bursts},\n"));
    out.push_str(&format!("  \"burst_size\": {burst},\n"));
    out.push_str(&format!("  \"primary_shards\": {shards},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"replica_shards\": {}, \"full_sync_ms\": {:.2}, \"write_p50_ms\": {:.3}, \
             \"write_p99_ms\": {:.3}, \"erase_propagation_ms\": {:.3}, \"records_applied\": {}}}{}\n",
            cell.replica_shards,
            cell.full_sync_ms,
            cell.write_p50_ms,
            cell.write_p99_ms,
            cell.erase_ms,
            cell.records_streamed,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
