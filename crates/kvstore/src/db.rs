//! The in-memory keyspace: a dictionary of typed objects plus the expiry
//! bookkeeping.
//!
//! [`Db`] is deliberately single-threaded (like a Redis database); the
//! [`crate::store::KvStore`] wraps it in a lock and adds persistence. All
//! methods take `&mut self` and are infallible unless a type error or
//! decoding problem can occur.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use rand::Rng;

use crate::clock::{SharedClock, UnixMillis};
use crate::config::EvictionPolicy;
use crate::object::{entry_footprint, Bytes, Object, Value};
use crate::ttl_wheel::{
    build_deadline_index, DeadlineIndex, DeadlineIndexKind, DeadlineIndexStats,
};
use crate::{Result, StoreError};

/// Why a key was removed — used by the caller to decide what to propagate
/// to the AOF and to the audit trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalCause {
    /// An explicit `DEL`/`UNLINK` issued by a client.
    Explicit,
    /// Lazy expiration triggered by an access to an expired key.
    LazyExpiry,
    /// The active expiration cycle (probabilistic or strict).
    ActiveExpiry,
    /// `FLUSHDB`/`FLUSHALL`.
    Flush,
    /// The `maxmemory` evictor reclaiming space (journaled as a `DEL`).
    Eviction,
}

/// Callback invoked after the engine removes a key for any per-key cause
/// (explicit delete, lazy/active expiry, `maxmemory` eviction) — wholesale
/// flushes do not fire it. Runs while the owning shard's lock is held:
/// implementations must be cheap and must not call back into the engine.
pub type RemovalListener = std::sync::Arc<dyn Fn(&str, RemovalCause) + Send + Sync>;

/// Holder for an optional [`RemovalListener`] (closures have no useful
/// `Debug`, so the slot renders just its occupancy).
#[derive(Clone, Default)]
pub struct RemovalListenerSlot(Option<RemovalListener>);

impl std::fmt::Debug for RemovalListenerSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "RemovalListenerSlot(set)"
        } else {
            "RemovalListenerSlot(unset)"
        })
    }
}

/// Counters describing keyspace activity (a subset of Redis `INFO stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Number of successful lookups.
    pub keyspace_hits: u64,
    /// Number of failed lookups.
    pub keyspace_misses: u64,
    /// Keys removed because their TTL elapsed (lazy + active).
    pub expired_keys: u64,
    /// Keys removed by explicit deletion commands.
    pub deleted_keys: u64,
    /// Keys removed by the `maxmemory` evictor.
    pub evicted_keys: u64,
    /// Total write operations applied.
    pub writes: u64,
    /// Approximate resident bytes of the keyspace — a live gauge, summed
    /// from [`entry_footprint`] deltas at every mutation. This is what the
    /// `maxmemory` budget is enforced against.
    pub mem_bytes: u64,
}

/// A single logical database (keyspace).
#[derive(Debug)]
pub struct Db {
    dict: HashMap<String, Object>,
    /// Absolute expiration time per key, in Unix milliseconds.
    expires: HashMap<String, UnixMillis>,
    /// Keys that have an expiration, laid out in a vector for O(1) random
    /// sampling by the probabilistic active-expiry cycle (Redis samples
    /// random dict entries; a vector plus position map is the moral
    /// equivalent for our hash map).
    expires_sample_pool: Vec<String>,
    expires_pool_index: HashMap<String, usize>,
    /// *All* keys, laid out the same way for O(1) random sampling by the
    /// `maxmemory` evictor (Redis samples the main dict for `allkeys-*`
    /// policies).
    keys_sample_pool: Vec<String>,
    keys_pool_index: HashMap<String, usize>,
    /// Secondary index over expiration deadlines, used by the *strict*
    /// expiry mode the paper's modified Redis implements: a hierarchical
    /// timer wheel by default, or the original BTree index (see
    /// [`crate::ttl_wheel`]).
    deadline_index: Box<dyn DeadlineIndex>,
    /// All keys in lexicographic order, used to serve YCSB-style scans.
    sorted_keys: BTreeSet<String>,
    clock: SharedClock,
    stats: DbStats,
    /// Number of keyspace changes since the last persistence checkpoint.
    dirty: u64,
    /// Notified after every per-key removal (see [`RemovalListener`]).
    removal_listener: RemovalListenerSlot,
}

impl Db {
    /// Create an empty database reading time from `clock`, with the
    /// default deadline index (the timer wheel).
    #[must_use]
    pub fn new(clock: SharedClock) -> Self {
        Db::with_deadline_index(clock, DeadlineIndexKind::default())
    }

    /// Create an empty database with an explicit deadline-index
    /// implementation (the BTree variant exists for differential testing
    /// and as a paper-faithful baseline).
    #[must_use]
    pub fn with_deadline_index(clock: SharedClock, index: DeadlineIndexKind) -> Self {
        let deadline_index = build_deadline_index(index, clock.now_millis());
        Db {
            dict: HashMap::new(),
            expires: HashMap::new(),
            expires_sample_pool: Vec::new(),
            expires_pool_index: HashMap::new(),
            keys_sample_pool: Vec::new(),
            keys_pool_index: HashMap::new(),
            deadline_index,
            sorted_keys: BTreeSet::new(),
            clock,
            stats: DbStats::default(),
            dirty: 0,
            removal_listener: RemovalListenerSlot::default(),
        }
    }

    /// Current time according to the database clock.
    #[must_use]
    pub fn now_millis(&self) -> UnixMillis {
        self.clock.now_millis()
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> DbStats {
        self.stats
    }

    /// Number of keyspace changes since the counter was last reset (used by
    /// snapshot/AOF-rewrite triggers).
    #[must_use]
    pub fn dirty(&self) -> u64 {
        self.dirty
    }

    /// Reset the dirty counter (called after a snapshot or AOF rewrite).
    pub fn reset_dirty(&mut self) {
        self.dirty = 0;
    }

    /// Approximate resident bytes of this keyspace (the `maxmemory` gauge).
    #[must_use]
    pub fn mem_bytes(&self) -> u64 {
        self.stats.mem_bytes
    }

    // ----- internal index maintenance -------------------------------------

    fn mem_add(&mut self, bytes: usize) {
        self.stats.mem_bytes += bytes as u64;
    }

    fn mem_sub(&mut self, bytes: usize) {
        self.stats.mem_bytes = self.stats.mem_bytes.saturating_sub(bytes as u64);
    }

    /// Register a newly created key in the evictor's sampling pool.
    fn index_key(&mut self, key: &str) {
        let pos = self.keys_sample_pool.len();
        self.keys_sample_pool.push(key.to_string());
        self.keys_pool_index.insert(key.to_string(), pos);
    }

    /// Drop a removed key from the evictor's sampling pool (same
    /// swap-remove idiom as the expiry pool).
    fn unindex_key(&mut self, key: &str) {
        if let Some(pos) = self.keys_pool_index.remove(key) {
            let last = self.keys_sample_pool.len() - 1;
            self.keys_sample_pool.swap_remove(pos);
            if pos != last {
                let moved = self.keys_sample_pool[pos].clone();
                self.keys_pool_index.insert(moved, pos);
            }
        }
    }

    fn index_expiry(&mut self, key: &str, at: UnixMillis) {
        if self.expires.insert(key.to_string(), at).is_none() {
            let pos = self.expires_sample_pool.len();
            self.expires_sample_pool.push(key.to_string());
            self.expires_pool_index.insert(key.to_string(), pos);
        }
        // The index upserts: a previous deadline for the key is replaced
        // (the wheel tombstones it, the BTree removes the old posting).
        self.deadline_index.insert(key, at);
    }

    fn unindex_expiry(&mut self, key: &str) {
        if self.expires.remove(key).is_some() {
            self.deadline_index.remove(key);
            if let Some(pos) = self.expires_pool_index.remove(key) {
                let last = self.expires_sample_pool.len() - 1;
                self.expires_sample_pool.swap_remove(pos);
                if pos != last {
                    let moved = self.expires_sample_pool[pos].clone();
                    self.expires_pool_index.insert(moved, pos);
                }
            }
        }
    }

    fn remove_key(&mut self, key: &str, cause: RemovalCause) -> Option<Object> {
        let removed = self.dict.remove(key);
        if let Some(obj) = &removed {
            self.mem_sub(entry_footprint(key, &obj.value));
            self.sorted_keys.remove(key);
            self.unindex_key(key);
            self.unindex_expiry(key);
            self.dirty += 1;
            match cause {
                RemovalCause::LazyExpiry | RemovalCause::ActiveExpiry => {
                    self.stats.expired_keys += 1;
                }
                RemovalCause::Explicit | RemovalCause::Flush => {
                    self.stats.deleted_keys += 1;
                }
                RemovalCause::Eviction => {
                    self.stats.evicted_keys += 1;
                }
            }
            if let Some(listener) = &self.removal_listener.0 {
                (**listener)(key, cause);
            }
        }
        removed
    }

    /// Install (or clear) the removal listener. The listener fires for
    /// every per-key removal — explicit deletes, lazy and active expiry,
    /// and `maxmemory` eviction — but not for wholesale flushes.
    pub fn set_removal_listener(&mut self, listener: Option<RemovalListener>) {
        self.removal_listener = RemovalListenerSlot(listener);
    }

    /// Delete the key if its TTL has elapsed (Redis' `expireIfNeeded`).
    /// Returns `true` if the key was expired and removed by this call.
    pub fn expire_if_needed(&mut self, key: &str) -> bool {
        let now = self.now_millis();
        match self.expires.get(key) {
            Some(&at) if at <= now => {
                self.remove_key(key, RemovalCause::LazyExpiry);
                true
            }
            _ => false,
        }
    }

    // ----- string commands -------------------------------------------------

    /// Set `key` to a string value, clearing any previous TTL (Redis `SET`).
    pub fn set(&mut self, key: &str, value: Bytes) {
        self.set_value(key, Value::Str(value));
    }

    /// Set `key` to an arbitrary typed value, clearing any previous TTL.
    pub fn set_value(&mut self, key: &str, value: Value) {
        let now = self.now_millis();
        self.unindex_expiry(key);
        let new_size = entry_footprint(key, &value);
        match self.dict.get_mut(key) {
            Some(obj) => {
                let old_size = entry_footprint(key, &obj.value);
                obj.value = value;
                obj.mark_written(now);
                self.mem_sub(old_size);
                self.mem_add(new_size);
            }
            None => {
                self.dict.insert(key.to_string(), Object::new(value, now));
                self.sorted_keys.insert(key.to_string());
                self.index_key(key);
                self.mem_add(new_size);
            }
        }
        self.stats.writes += 1;
        self.dirty += 1;
    }

    /// Get the string value of `key` (Redis `GET`).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::WrongType`] if the key holds a non-string.
    pub fn get(&mut self, key: &str) -> Result<Option<Bytes>> {
        self.expire_if_needed(key);
        let now = self.now_millis();
        match self.dict.get_mut(key) {
            Some(obj) => {
                obj.touch(now);
                self.stats.keyspace_hits += 1;
                match &obj.value {
                    Value::Str(b) => Ok(Some(b.clone())),
                    other => Err(StoreError::WrongType {
                        key: key.to_string(),
                        actual: other.type_name(),
                        expected: "string",
                    }),
                }
            }
            None => {
                self.stats.keyspace_misses += 1;
                Ok(None)
            }
        }
    }

    /// Fetch the full typed value of a key, if present.
    pub fn get_value(&mut self, key: &str) -> Option<Value> {
        self.expire_if_needed(key);
        let now = self.now_millis();
        self.dict.get_mut(key).map(|obj| {
            obj.touch(now);
            obj.value.clone()
        })
    }

    /// Whether `key` exists (after lazy expiry).
    pub fn exists(&mut self, key: &str) -> bool {
        self.expire_if_needed(key);
        self.dict.contains_key(key)
    }

    /// Delete a key (Redis `DEL`/`UNLINK`). Returns `true` if it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        self.expire_if_needed(key);
        self.remove_key(key, RemovalCause::Explicit).is_some()
    }

    /// Remove every key (Redis `FLUSHALL`). Returns the number removed.
    pub fn flush_all(&mut self) -> usize {
        let n = self.dict.len();
        self.dict.clear();
        self.expires.clear();
        self.expires_sample_pool.clear();
        self.expires_pool_index.clear();
        self.keys_sample_pool.clear();
        self.keys_pool_index.clear();
        self.deadline_index.clear();
        self.sorted_keys.clear();
        self.stats.deleted_keys += n as u64;
        self.stats.mem_bytes = 0;
        self.dirty += n as u64;
        n
    }

    // ----- hash commands ---------------------------------------------------

    /// Set a field of the hash at `key` (Redis `HSET`). Creates the hash if
    /// missing. Returns `true` if the field was newly created.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::WrongType`] if the key holds a non-hash.
    pub fn hset(&mut self, key: &str, field: &str, value: Bytes) -> Result<bool> {
        self.expire_if_needed(key);
        let now = self.now_millis();
        let value_len = value.len();
        let obj = self
            .dict
            .entry(key.to_string())
            .or_insert_with(|| Object::new(Value::Hash(BTreeMap::new()), now));
        match &mut obj.value {
            Value::Hash(map) => {
                let prev = map.insert(field.to_string(), value);
                let fresh = prev.is_none();
                obj.mark_written(now);
                if self.sorted_keys.insert(key.to_string()) {
                    self.index_key(key);
                    self.mem_add(crate::object::PER_KEY_OVERHEAD + key.len());
                }
                if let Some(old) = prev {
                    self.mem_sub(field.len() + old.len());
                }
                self.mem_add(field.len() + value_len);
                self.stats.writes += 1;
                self.dirty += 1;
                Ok(fresh)
            }
            other => Err(StoreError::WrongType {
                key: key.to_string(),
                actual: other.type_name(),
                expected: "hash",
            }),
        }
    }

    /// Set many fields at once (Redis `HMSET`). Returns the number of new
    /// fields.
    pub fn hset_multi(&mut self, key: &str, fields: &BTreeMap<String, Bytes>) -> Result<usize> {
        let mut created = 0;
        for (f, v) in fields {
            if self.hset(key, f, v.clone())? {
                created += 1;
            }
        }
        Ok(created)
    }

    /// Get one field of a hash (Redis `HGET`).
    pub fn hget(&mut self, key: &str, field: &str) -> Result<Option<Bytes>> {
        self.expire_if_needed(key);
        let now = self.now_millis();
        match self.dict.get_mut(key) {
            Some(obj) => {
                obj.touch(now);
                match &obj.value {
                    Value::Hash(map) => {
                        let hit = map.get(field).cloned();
                        if hit.is_some() {
                            self.stats.keyspace_hits += 1;
                        } else {
                            self.stats.keyspace_misses += 1;
                        }
                        Ok(hit)
                    }
                    other => Err(StoreError::WrongType {
                        key: key.to_string(),
                        actual: other.type_name(),
                        expected: "hash",
                    }),
                }
            }
            None => {
                self.stats.keyspace_misses += 1;
                Ok(None)
            }
        }
    }

    /// Get all fields of a hash (Redis `HGETALL`).
    pub fn hgetall(&mut self, key: &str) -> Result<Option<BTreeMap<String, Bytes>>> {
        self.expire_if_needed(key);
        let now = self.now_millis();
        match self.dict.get_mut(key) {
            Some(obj) => {
                obj.touch(now);
                self.stats.keyspace_hits += 1;
                match &obj.value {
                    Value::Hash(map) => Ok(Some(map.clone())),
                    other => Err(StoreError::WrongType {
                        key: key.to_string(),
                        actual: other.type_name(),
                        expected: "hash",
                    }),
                }
            }
            None => {
                self.stats.keyspace_misses += 1;
                Ok(None)
            }
        }
    }

    /// Delete a field from a hash (Redis `HDEL`). Removes the key entirely
    /// when the last field goes away, like Redis does.
    pub fn hdel(&mut self, key: &str, field: &str) -> Result<bool> {
        self.expire_if_needed(key);
        let now = self.now_millis();
        let Some(obj) = self.dict.get_mut(key) else {
            return Ok(false);
        };
        let removed = match &mut obj.value {
            Value::Hash(map) => {
                let prev = map.remove(field);
                let removed = prev.is_some();
                if let Some(old) = prev {
                    obj.mark_written(now);
                    self.mem_sub(field.len() + old.len());
                    self.stats.writes += 1;
                    self.dirty += 1;
                }
                removed
            }
            other => {
                return Err(StoreError::WrongType {
                    key: key.to_string(),
                    actual: other.type_name(),
                    expected: "hash",
                })
            }
        };
        if removed && self.dict.get(key).is_some_and(|o| o.value.is_empty()) {
            self.remove_key(key, RemovalCause::Explicit);
        }
        Ok(removed)
    }

    // ----- set commands (used by the GDPR metadata indexes) ----------------

    /// Add a member to the set at `key` (Redis `SADD`). Returns `true` if
    /// newly added.
    pub fn sadd(&mut self, key: &str, member: Bytes) -> Result<bool> {
        self.expire_if_needed(key);
        let now = self.now_millis();
        let member_len = member.len();
        let obj = self
            .dict
            .entry(key.to_string())
            .or_insert_with(|| Object::new(Value::Set(BTreeSet::new()), now));
        match &mut obj.value {
            Value::Set(members) => {
                let added = members.insert(member);
                if added {
                    obj.mark_written(now);
                }
                if self.sorted_keys.insert(key.to_string()) {
                    self.index_key(key);
                    self.mem_add(crate::object::PER_KEY_OVERHEAD + key.len());
                }
                if added {
                    self.mem_add(member_len);
                    self.stats.writes += 1;
                    self.dirty += 1;
                }
                Ok(added)
            }
            other => Err(StoreError::WrongType {
                key: key.to_string(),
                actual: other.type_name(),
                expected: "set",
            }),
        }
    }

    /// Remove a member from a set (Redis `SREM`).
    pub fn srem(&mut self, key: &str, member: &[u8]) -> Result<bool> {
        self.expire_if_needed(key);
        let now = self.now_millis();
        let Some(obj) = self.dict.get_mut(key) else {
            return Ok(false);
        };
        let removed = match &mut obj.value {
            Value::Set(members) => {
                let removed = members.remove(member);
                if removed {
                    obj.mark_written(now);
                    self.mem_sub(member.len());
                    self.stats.writes += 1;
                    self.dirty += 1;
                }
                removed
            }
            other => {
                return Err(StoreError::WrongType {
                    key: key.to_string(),
                    actual: other.type_name(),
                    expected: "set",
                })
            }
        };
        if removed && self.dict.get(key).is_some_and(|o| o.value.is_empty()) {
            self.remove_key(key, RemovalCause::Explicit);
        }
        Ok(removed)
    }

    /// All members of a set (Redis `SMEMBERS`), empty if the key is absent.
    pub fn smembers(&mut self, key: &str) -> Result<Vec<Bytes>> {
        self.expire_if_needed(key);
        match self.dict.get(key) {
            Some(obj) => match &obj.value {
                Value::Set(members) => Ok(members.iter().cloned().collect()),
                other => Err(StoreError::WrongType {
                    key: key.to_string(),
                    actual: other.type_name(),
                    expected: "set",
                }),
            },
            None => Ok(Vec::new()),
        }
    }

    // ----- TTL commands ----------------------------------------------------

    /// Set an absolute expiration time (Redis `PEXPIREAT`). Returns `false`
    /// if the key does not exist.
    pub fn expire_at(&mut self, key: &str, at: UnixMillis) -> bool {
        self.expire_if_needed(key);
        if !self.dict.contains_key(key) {
            return false;
        }
        self.index_expiry(key, at);
        self.dirty += 1;
        true
    }

    /// Set a relative TTL in milliseconds (Redis `PEXPIRE`).
    pub fn expire_in_millis(&mut self, key: &str, ttl_ms: u64) -> bool {
        let at = self.now_millis().saturating_add(ttl_ms);
        self.expire_at(key, at)
    }

    /// Remaining TTL in milliseconds, `None` if the key has no TTL or does
    /// not exist (Redis `PTTL`, collapsing the -1/-2 distinction into the
    /// richer [`Option`] returned by [`Db::exists`]).
    pub fn ttl_millis(&mut self, key: &str) -> Option<u64> {
        self.expire_if_needed(key);
        let now = self.now_millis();
        self.expires.get(key).map(|&at| at.saturating_sub(now))
    }

    /// Absolute expiration deadline of a key, if any.
    #[must_use]
    pub fn expire_deadline(&self, key: &str) -> Option<UnixMillis> {
        self.expires.get(key).copied()
    }

    /// Remove the TTL from a key (Redis `PERSIST`). Returns `true` if a TTL
    /// was removed.
    pub fn persist(&mut self, key: &str) -> bool {
        if self.expires.contains_key(key) {
            self.unindex_expiry(key);
            self.dirty += 1;
            true
        } else {
            false
        }
    }

    // ----- expiry cycles ---------------------------------------------------

    /// One iteration of Redis' probabilistic active-expiry sampling: look at
    /// up to `sample_size` random keys that carry a TTL and remove the
    /// expired ones. Returns `(sampled, removed_keys)`.
    ///
    /// This is the algorithm the paper describes for stock Redis: *"once
    /// every 100ms, it samples 20 random keys from the set of keys with
    /// expire flag set; if any of these twenty have expired, they are
    /// actively deleted; if less than 5 keys got deleted, then wait till the
    /// next iteration, else repeat the loop immediately."*
    pub fn active_expire_sample<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        sample_size: usize,
    ) -> (usize, Vec<String>) {
        let now = self.now_millis();
        let pool_len = self.expires_sample_pool.len();
        if pool_len == 0 {
            return (0, Vec::new());
        }
        let samples = sample_size.min(pool_len);
        let mut expired = Vec::new();
        for _ in 0..samples {
            // Sample with replacement, as the Redis dict sampling effectively
            // does across buckets.
            let idx = rng.gen_range(0..self.expires_sample_pool.len());
            let key = self.expires_sample_pool[idx].clone();
            if let Some(&at) = self.expires.get(&key) {
                if at <= now {
                    self.remove_key(&key, RemovalCause::ActiveExpiry);
                    expired.push(key);
                    if self.expires_sample_pool.is_empty() {
                        break;
                    }
                }
            }
        }
        (samples, expired)
    }

    /// Strict expiry sweep: remove **every** key whose deadline is `<= now`,
    /// using the deadline index. This is the paper's modification ("we
    /// modify Redis to iterate through the entire list of keys with
    /// associated EXPIRE"), served in `O(expired)` by the timer wheel (or
    /// the BTree reference index — the paper's §5.1 *Efficient Deletion*
    /// suggestion). The order of the returned keys is
    /// implementation-defined but deterministic — the BTree sweeps in
    /// `(deadline, key)` order, the wheel in slot order; callers needing
    /// a canonical order must sort.
    pub fn strict_expire_sweep(&mut self) -> Vec<String> {
        let now = self.now_millis();
        let removed = self.deadline_index.advance(now);
        for key in &removed {
            self.remove_key(key, RemovalCause::ActiveExpiry);
        }
        removed
    }

    // ----- maxmemory eviction ----------------------------------------------

    /// Pick and remove one eviction victim according to `policy`, sampling
    /// up to `sample` random keys from the whole keyspace (the
    /// `maxmemory-samples` approximation Redis uses instead of a true LRU
    /// list). Returns the evicted key so the caller can journal a `DEL`,
    /// or `None` if the keyspace is empty or the policy never evicts.
    pub fn evict_one<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        policy: EvictionPolicy,
        sample: usize,
    ) -> Option<String> {
        if self.keys_sample_pool.is_empty() {
            return None;
        }
        let victim = match policy {
            EvictionPolicy::Noeviction => return None,
            EvictionPolicy::SampledRandom => {
                let idx = rng.gen_range(0..self.keys_sample_pool.len());
                self.keys_sample_pool[idx].clone()
            }
            EvictionPolicy::SampledLru => {
                // Approximated LRU: among `sample` random keys, evict the
                // one idle the longest (smallest last-access timestamp).
                let mut best: Option<(UnixMillis, String)> = None;
                for _ in 0..sample.max(1) {
                    let idx = rng.gen_range(0..self.keys_sample_pool.len());
                    let key = &self.keys_sample_pool[idx];
                    let last = self.dict.get(key).map_or(0, |o| o.last_access_ms);
                    if best.as_ref().is_none_or(|(b, _)| last < *b) {
                        best = Some((last, key.clone()));
                    }
                }
                best?.1
            }
        };
        self.remove_key(&victim, RemovalCause::Eviction);
        Some(victim)
    }

    /// Number of keys currently carrying a TTL.
    #[must_use]
    pub fn expires_len(&self) -> usize {
        self.expires.len()
    }

    /// Number of keys whose TTL deadline has already passed but which are
    /// still present in the keyspace (i.e. not yet physically erased). This
    /// is exactly the quantity Figure 2 of the paper tracks. Takes `&mut`
    /// because the wheel advances its cursor to answer it.
    pub fn pending_expired_len(&mut self) -> usize {
        let now = self.clock.now_millis();
        self.deadline_index.pending_expired(now)
    }

    /// Which deadline-index implementation this keyspace runs on.
    #[must_use]
    pub fn deadline_index_kind(&self) -> DeadlineIndexKind {
        self.deadline_index.kind()
    }

    /// Occupancy and activity counters of the deadline index.
    #[must_use]
    pub fn deadline_index_stats(&self) -> DeadlineIndexStats {
        self.deadline_index.stats()
    }

    // ----- keyspace queries -------------------------------------------------

    /// Number of keys (including not-yet-expired ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// Whether the keyspace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// All keys matching a glob-style pattern (Redis `KEYS`). Supports `*`
    /// and `?` wildcards.
    #[must_use]
    pub fn keys(&self, pattern: &str) -> Vec<String> {
        self.sorted_keys
            .iter()
            .filter(|k| glob_match(pattern, k))
            .cloned()
            .collect()
    }

    /// Ordered scan starting at `start` (inclusive), returning up to `count`
    /// keys — the primitive the YCSB scan workload (workload E) maps to.
    #[must_use]
    pub fn scan_range(&self, start: &str, count: usize) -> Vec<String> {
        self.sorted_keys
            .range(start.to_string()..)
            .take(count)
            .cloned()
            .collect()
    }

    /// Iterate over all `(key, object)` pairs (used by snapshot and AOF
    /// rewrite).
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Object)> {
        self.dict.iter()
    }
}

/// Minimal glob matcher supporting `*` (any run) and `?` (any single char),
/// the subset Redis `KEYS`/`SCAN MATCH` patterns use in practice.
#[must_use]
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[u8], t: &[u8]) -> bool {
        match (p.first(), t.first()) {
            (None, None) => true,
            (Some(b'*'), _) => {
                // Try to consume zero or more characters.
                inner(&p[1..], t) || (!t.is_empty() && inner(p, &t[1..]))
            }
            (Some(b'?'), Some(_)) => inner(&p[1..], &t[1..]),
            (Some(a), Some(b)) if a == b => inner(&p[1..], &t[1..]),
            _ => false,
        }
    }
    inner(pattern.as_bytes(), text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, SimClock};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn sim_db() -> (Db, SimClock) {
        let clock = SimClock::new(1_000_000);
        (Db::new(Arc::new(clock.clone())), clock)
    }

    #[test]
    fn set_get_roundtrip() {
        let (mut db, _) = sim_db();
        db.set("k", b"v".to_vec());
        assert_eq!(db.get("k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(db.get("missing").unwrap(), None);
        assert_eq!(db.stats().keyspace_hits, 1);
        assert_eq!(db.stats().keyspace_misses, 1);
    }

    #[test]
    fn set_overwrites_and_clears_ttl() {
        let (mut db, _) = sim_db();
        db.set("k", b"v1".to_vec());
        db.expire_in_millis("k", 5_000);
        assert!(db.ttl_millis("k").is_some());
        db.set("k", b"v2".to_vec());
        assert_eq!(db.ttl_millis("k"), None, "SET clears the TTL like Redis");
        assert_eq!(db.get("k").unwrap(), Some(b"v2".to_vec()));
    }

    #[test]
    fn wrong_type_errors() {
        let (mut db, _) = sim_db();
        db.hset("h", "f", b"v".to_vec()).unwrap();
        assert!(matches!(db.get("h"), Err(StoreError::WrongType { .. })));
        db.set("s", b"v".to_vec());
        assert!(matches!(
            db.hget("s", "f"),
            Err(StoreError::WrongType { .. })
        ));
        assert!(matches!(
            db.sadd("s", b"m".to_vec()),
            Err(StoreError::WrongType { .. })
        ));
    }

    #[test]
    fn delete_and_exists() {
        let (mut db, _) = sim_db();
        db.set("k", b"v".to_vec());
        assert!(db.exists("k"));
        assert!(db.delete("k"));
        assert!(!db.delete("k"));
        assert!(!db.exists("k"));
        assert_eq!(db.stats().deleted_keys, 1);
    }

    #[test]
    fn lazy_expiry_on_access() {
        let (mut db, clock) = sim_db();
        db.set("k", b"v".to_vec());
        db.expire_in_millis("k", 100);
        clock.advance_millis(101);
        assert_eq!(db.get("k").unwrap(), None);
        assert_eq!(db.stats().expired_keys, 1);
        assert_eq!(db.expires_len(), 0);
    }

    #[test]
    fn ttl_reports_remaining_time() {
        let (mut db, clock) = sim_db();
        db.set("k", b"v".to_vec());
        db.expire_in_millis("k", 500);
        clock.advance_millis(200);
        assert_eq!(db.ttl_millis("k"), Some(300));
        assert!(db.persist("k"));
        assert_eq!(db.ttl_millis("k"), None);
        assert!(!db.persist("k"));
    }

    #[test]
    fn expire_on_missing_key_is_false() {
        let (mut db, _) = sim_db();
        assert!(!db.expire_in_millis("nope", 100));
        assert!(!db.expire_at("nope", 42));
    }

    #[test]
    fn hash_operations() {
        let (mut db, _) = sim_db();
        assert!(db.hset("h", "f1", b"a".to_vec()).unwrap());
        assert!(!db.hset("h", "f1", b"b".to_vec()).unwrap());
        assert!(db.hset("h", "f2", b"c".to_vec()).unwrap());
        assert_eq!(db.hget("h", "f1").unwrap(), Some(b"b".to_vec()));
        assert_eq!(db.hget("h", "missing").unwrap(), None);
        let all = db.hgetall("h").unwrap().unwrap();
        assert_eq!(all.len(), 2);
        assert!(db.hdel("h", "f1").unwrap());
        assert!(db.hdel("h", "f2").unwrap());
        assert!(!db.exists("h"), "hash removed when last field deleted");
    }

    #[test]
    fn set_operations() {
        let (mut db, _) = sim_db();
        assert!(db.sadd("s", b"a".to_vec()).unwrap());
        assert!(!db.sadd("s", b"a".to_vec()).unwrap());
        db.sadd("s", b"b".to_vec()).unwrap();
        assert_eq!(db.smembers("s").unwrap().len(), 2);
        assert!(db.srem("s", b"a").unwrap());
        assert!(!db.srem("s", b"zzz").unwrap());
        assert_eq!(db.smembers("nothere").unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn flush_all_clears_everything() {
        let (mut db, _) = sim_db();
        for i in 0..10 {
            db.set(&format!("k{i}"), vec![i as u8]);
            db.expire_in_millis(&format!("k{i}"), 1000);
        }
        assert_eq!(db.flush_all(), 10);
        assert!(db.is_empty());
        assert_eq!(db.expires_len(), 0);
        assert_eq!(db.scan_range("", 100).len(), 0);
    }

    #[test]
    fn strict_sweep_removes_all_expired() {
        let (mut db, clock) = sim_db();
        for i in 0..100 {
            let key = format!("k{i:03}");
            db.set(&key, b"v".to_vec());
            // Half expire soon, half much later.
            let ttl = if i % 2 == 0 { 100 } else { 1_000_000 };
            db.expire_in_millis(&key, ttl);
        }
        clock.advance_millis(200);
        assert_eq!(db.pending_expired_len(), 50);
        let removed = db.strict_expire_sweep();
        assert_eq!(removed.len(), 50);
        assert_eq!(db.pending_expired_len(), 0);
        assert_eq!(db.len(), 50);
        assert_eq!(db.stats().expired_keys, 50);
    }

    #[test]
    fn active_sample_removes_only_expired() {
        let (mut db, clock) = sim_db();
        for i in 0..50 {
            let key = format!("k{i:02}");
            db.set(&key, b"v".to_vec());
            db.expire_in_millis(&key, if i < 25 { 10 } else { 1_000_000 });
        }
        clock.advance_millis(20);
        let mut rng = rand::thread_rng();
        let mut total_removed = 0;
        for _ in 0..500 {
            let (_, removed) = db.active_expire_sample(&mut rng, 20);
            total_removed += removed.len();
        }
        assert_eq!(
            total_removed, 25,
            "eventually all expired keys are sampled away"
        );
        assert_eq!(db.len(), 25);
    }

    #[test]
    fn scan_range_is_ordered_and_bounded() {
        let (mut db, _) = sim_db();
        for i in [3, 1, 2, 5, 4] {
            db.set(&format!("user{i}"), b"v".to_vec());
        }
        let scanned = db.scan_range("user2", 3);
        assert_eq!(scanned, vec!["user2", "user3", "user4"]);
    }

    #[test]
    fn keys_glob_patterns() {
        let (mut db, _) = sim_db();
        db.set("user:1:email", b"".to_vec());
        db.set("user:2:email", b"".to_vec());
        db.set("order:1", b"".to_vec());
        assert_eq!(db.keys("user:*").len(), 2);
        assert_eq!(db.keys("user:?:email").len(), 2);
        assert_eq!(db.keys("*").len(), 3);
        assert_eq!(db.keys("order:1").len(), 1);
        assert_eq!(db.keys("nothing*").len(), 0);
    }

    #[test]
    fn glob_match_edge_cases() {
        assert!(glob_match("", ""));
        assert!(glob_match("*", ""));
        assert!(!glob_match("?", ""));
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(!glob_match("a*b", "ac"));
    }

    #[test]
    fn dirty_counter_tracks_changes() {
        let (mut db, _) = sim_db();
        assert_eq!(db.dirty(), 0);
        db.set("a", b"1".to_vec());
        db.set("b", b"2".to_vec());
        db.delete("a");
        assert!(db.dirty() >= 3);
        db.reset_dirty();
        assert_eq!(db.dirty(), 0);
    }

    #[test]
    fn mem_bytes_tracks_mutations() {
        use crate::object::PER_KEY_OVERHEAD;
        let (mut db, _) = sim_db();
        assert_eq!(db.mem_bytes(), 0);
        db.set("k", b"abcd".to_vec());
        let one = (PER_KEY_OVERHEAD + 1 + 4) as u64;
        assert_eq!(db.mem_bytes(), one);
        // Overwrite re-charges only the payload difference.
        db.set("k", b"ab".to_vec());
        assert_eq!(db.mem_bytes(), one - 2);
        // Hash fields charge field + value bytes; key overhead once.
        db.hset("h", "f1", b"v1".to_vec()).unwrap();
        db.hset("h", "f2", b"v2".to_vec()).unwrap();
        let h = (PER_KEY_OVERHEAD + 1 + 4 + 4) as u64;
        assert_eq!(db.mem_bytes(), one - 2 + h);
        // Overwriting a field swaps its payload.
        db.hset("h", "f1", b"longer".to_vec()).unwrap();
        assert_eq!(db.mem_bytes(), one - 2 + h + 4);
        db.hdel("h", "f1").unwrap();
        db.hdel("h", "f2").unwrap();
        // Last hdel removes the key entirely, refunding the overhead.
        assert_eq!(db.mem_bytes(), one - 2);
        // Sets charge member bytes.
        db.sadd("s", b"mmm".to_vec()).unwrap();
        assert_eq!(db.mem_bytes(), one - 2 + (PER_KEY_OVERHEAD + 1 + 3) as u64);
        db.srem("s", b"mmm").unwrap();
        assert_eq!(db.mem_bytes(), one - 2);
        db.delete("k");
        assert_eq!(db.mem_bytes(), 0);
    }

    #[test]
    fn mem_bytes_zero_after_flush_and_expiry() {
        let (mut db, clock) = sim_db();
        for i in 0..8 {
            db.set(&format!("k{i}"), vec![0u8; 100]);
            db.expire_in_millis(&format!("k{i}"), 50);
        }
        assert!(db.mem_bytes() > 0);
        clock.advance_millis(100);
        db.strict_expire_sweep();
        assert_eq!(db.mem_bytes(), 0, "expiry refunds the footprint");
        db.set("k", b"v".to_vec());
        db.flush_all();
        assert_eq!(db.mem_bytes(), 0, "flush resets the gauge");
    }

    #[test]
    fn evict_one_lru_prefers_idle_keys() {
        let (mut db, clock) = sim_db();
        db.set("cold", b"v".to_vec());
        clock.advance_millis(10_000);
        db.set("hot", b"v".to_vec());
        // Keep "hot" hot.
        db.get("hot").unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // Sample size 8 over a 2-key pool: both keys are sampled, so LRU
        // must pick the idle one deterministically.
        let victim = db
            .evict_one(&mut rng, EvictionPolicy::SampledLru, 8)
            .unwrap();
        assert_eq!(victim, "cold");
        assert_eq!(db.stats().evicted_keys, 1);
        assert!(db.exists("hot"));
    }

    #[test]
    fn evict_one_policies_and_empty_pool() {
        let (mut db, _) = sim_db();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(db.evict_one(&mut rng, EvictionPolicy::SampledLru, 5), None);
        db.set("k", b"v".to_vec());
        assert_eq!(
            db.evict_one(&mut rng, EvictionPolicy::Noeviction, 5),
            None,
            "noeviction never evicts"
        );
        let victim = db
            .evict_one(&mut rng, EvictionPolicy::SampledRandom, 5)
            .unwrap();
        assert_eq!(victim, "k");
        assert!(db.is_empty());
        assert_eq!(db.mem_bytes(), 0);
    }

    #[test]
    fn pending_expired_len_respects_clock() {
        let (mut db, clock) = sim_db();
        db.set("k", b"v".to_vec());
        db.expire_in_millis("k", 1_000);
        assert_eq!(db.pending_expired_len(), 0);
        clock.advance_millis(2_000);
        assert_eq!(db.pending_expired_len(), 1);
        assert_eq!(clock.now_millis(), db.now_millis());
    }
}
