//! GDPRbench sweep: the four role workloads (customer, controller,
//! processor, regulator) against the compliance store, varying engine
//! shard count × driver thread count in-process, plus both live-TCP
//! transports at the top of the sweep, with per-right latency
//! percentiles throughout.
//!
//! A second section measures the metadata hot paths in isolation across
//! a wider shard axis (`hotshards`, default 8):
//!
//! * `keysof` — `GDPR.KEYSOF` of a subject whose keys spread over every
//!   shard (the presence map prunes nothing: worst case);
//! * `keysof-lone` — `GDPR.KEYSOF` of a subject whose keys all live in
//!   one shard (the presence map skips every other segment: the
//!   ~flat-latency case the shard-presence bitmap restores);
//! * `export` — monolithic `GDPR.EXPORT` of a multi-hundred-key subject
//!   through the streaming renderer with per-segment batched reads;
//! * `export-paged` — the same export driven to completion through the
//!   paged `CURSOR` form (COUNT 64).
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin gdprbench \
//!     [subjects=N] [keys=N] [ops=N] [seed=N] [maxshards=N] [maxthreads=N] \
//!     [tcp=0|1] [hotkeys=N] [hotshards=N]
//! ```
//!
//! Emits a human table and writes `BENCH_gdprbench.json` into the current
//! directory.

use std::sync::Arc;
use std::time::Instant;

use bench::arg_value;
use gdpr_core::acl::Grant;
use gdpr_core::policy::CompliancePolicy;
use gdpr_core::store::{AccessContext, GdprStore};
use gdpr_server::dispatch::Dispatcher;
use gdpr_server::tcp::{ServerConfig, TcpServer, Transport};
use gdprbench::{BenchSpec, ClientFactory, InProcessFactory, Role, RunSummary, Runner, TcpFactory};
use kvstore::config::StoreConfig;
use kvstore::shard::{ShardRouter, DEFAULT_HASH_SEED};
use obs::hist::LatencyHistogram;

struct Cell {
    workload: &'static str,
    transport: &'static str,
    shards: usize,
    threads: usize,
    load: RunSummary,
    run: RunSummary,
}

struct HotPath {
    path: &'static str,
    shards: usize,
    keys: u64,
    hist: LatencyHistogram,
}

fn open_store(shards: usize) -> Arc<GdprStore> {
    let store = GdprStore::open(
        CompliancePolicy::eventual(),
        StoreConfig::in_memory().aof_in_memory().shards(shards),
        Box::new(audit::sink::NullSink::new()),
    )
    .expect("open GDPR store");
    for (actor, purpose) in BenchSpec::grants() {
        store.grant(Grant::new(actor, purpose));
    }
    Arc::new(store)
}

fn sweep_axis(max: u64) -> Vec<usize> {
    let mut axis = Vec::new();
    let mut v = 1usize;
    while v as u64 <= max.max(1) {
        axis.push(v);
        v *= 2;
    }
    axis
}

/// Load + run one role through `load_factory`/`run_factory`.
fn drive(
    spec: &BenchSpec,
    threads: usize,
    load_factory: &dyn ClientFactory,
    run_factory: &dyn ClientFactory,
) -> (RunSummary, RunSummary) {
    let runner = Runner::new(threads);
    let load = runner.run_load(spec, load_factory).expect("load phase");
    let run = runner
        .run_transactions(spec, run_factory)
        .expect("transaction phase");
    (load, run)
}

fn print_cell(cell: &Cell) {
    println!(
        "  {:<10} {:<11} shards={:<3} threads={:<3} load {:>9.0} ops/s   run {:>9.0} ops/s   \
         p99 {:>6}us   denials {:<5} failures {}",
        cell.workload,
        cell.transport,
        cell.shards,
        cell.threads,
        cell.load.throughput(),
        cell.run.throughput(),
        cell.run.overall.percentile_micros(0.99),
        cell.run.denials,
        cell.run.failures,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let subjects = arg_value(&args, "subjects").unwrap_or(400);
    let keys = arg_value(&args, "keys").unwrap_or(4);
    let ops = arg_value(&args, "ops").unwrap_or(8_000);
    let seed = arg_value(&args, "seed").unwrap_or(42);
    let max_shards = arg_value(&args, "maxshards").unwrap_or(2);
    let max_threads = arg_value(&args, "maxthreads").unwrap_or(2);
    let tcp = arg_value(&args, "tcp").unwrap_or(1) != 0;
    let hot_keys = arg_value(&args, "hotkeys").unwrap_or(400);
    let hot_shards = arg_value(&args, "hotshards").unwrap_or(8);

    let cores = bench::host_cores();
    println!(
        "gdprbench — four-role suite, subjects={subjects}, keys/subject={keys}, ops={ops}, \
         cores={cores}"
    );
    if cores == 1 {
        println!("  note: single-core host — expect parity, not speedup, across the sweep");
    }

    let mut cells = Vec::new();
    for role in Role::all() {
        let spec = BenchSpec::new(role, subjects, keys, ops).seed(seed);
        for &shards in &sweep_axis(max_shards) {
            for &threads in &sweep_axis(max_threads) {
                let store = open_store(shards);
                let (load, run) = drive(
                    &spec,
                    threads,
                    &InProcessFactory::for_load(Arc::clone(&store)),
                    &InProcessFactory::for_role(store, role),
                );
                let cell = Cell {
                    workload: role.name(),
                    transport: "inproc",
                    shards,
                    threads,
                    load,
                    run,
                };
                print_cell(&cell);
                cells.push(cell);
            }
        }
        if tcp {
            // Both live transports at the top of the sweep: same spec, same
            // store shape, real sockets.
            for (label, transport) in [
                ("tcp-reactor", Transport::Reactor),
                ("tcp-threads", Transport::Threads),
            ] {
                let shards = *sweep_axis(max_shards).last().unwrap();
                let threads = *sweep_axis(max_threads).last().unwrap();
                let store = open_store(shards);
                let config = ServerConfig {
                    transport,
                    ..ServerConfig::default()
                };
                let handle = TcpServer::bind(Dispatcher::gdpr(store), "127.0.0.1:0", config)
                    .expect("bind tcp server");
                let addr = handle.local_addr();
                let (load, run) = drive(
                    &spec,
                    threads,
                    &TcpFactory::for_load(addr),
                    &TcpFactory::for_role(addr, role),
                );
                handle.shutdown();
                let cell = Cell {
                    workload: role.name(),
                    transport: label,
                    shards,
                    threads,
                    load,
                    run,
                };
                print_cell(&cell);
                cells.push(cell);
            }
        }
    }

    // Hot paths: one subject owning `hot_keys` records. `keysof` fans out
    // across every shard's index segment (its keys spread everywhere, so
    // presence pruning cannot help); `keysof-lone` queries a subject whose
    // keys are confined to a single shard, the case the presence map turns
    // into a one-segment lookup regardless of shard count; `export` reads
    // every value and streams the portability JSON; `export-paged` drives
    // the same document through the CURSOR form.
    println!("\nhot paths — one subject, {hot_keys} keys:");
    let mut hot_paths = Vec::new();
    for &shards in &sweep_axis(hot_shards) {
        let store = open_store(shards);
        let loader = AccessContext::new(gdprbench::spec::LOAD_ACTOR, gdprbench::spec::LOAD_PURPOSE);
        let hot_meta = || {
            let mut meta = gdpr_core::metadata::PersonalMetadata::new("hot-subject");
            meta.purposes
                .insert(gdprbench::spec::LOAD_PURPOSE.to_string());
            meta
        };
        for k in 0..hot_keys {
            store
                .put(
                    &loader,
                    &format!("hot:k{k:05}"),
                    vec![b'x'; 100],
                    hot_meta(),
                )
                .expect("hot load");
        }
        // The lone subject: same key count, but every key routes to shard
        // 0 of this store's layout (candidates are filtered through the
        // same seeded router the engine uses).
        let router = ShardRouter::new(shards, DEFAULT_HASH_SEED);
        let mut loaded = 0u64;
        let mut candidate = 0u64;
        while loaded < hot_keys {
            let key = format!("lone:k{candidate:06}");
            candidate += 1;
            if router.shard_of(&key) != 0 {
                continue;
            }
            let mut meta = gdpr_core::metadata::PersonalMetadata::new("lone-subject");
            meta.purposes
                .insert(gdprbench::spec::LOAD_PURPOSE.to_string());
            store
                .put(&loader, &key, vec![b'x'; 100], meta)
                .expect("lone load");
            loaded += 1;
        }
        let auditor = AccessContext::new(Role::Regulator.actor(), Role::Regulator.purpose());
        for (path, f) in [
            (
                "keysof",
                Box::new(|| store.keys_of_subject("hot-subject").expect("keysof").len() as u64)
                    as Box<dyn Fn() -> u64>,
            ),
            (
                "keysof-lone",
                Box::new(|| {
                    store
                        .keys_of_subject("lone-subject")
                        .expect("keysof-lone")
                        .len() as u64
                }),
            ),
            (
                "export",
                Box::new(|| {
                    store
                        .right_to_portability(&auditor, "hot-subject")
                        .expect("export")
                        .len() as u64
                }),
            ),
            (
                "export-paged",
                Box::new(|| {
                    let mut total = 0u64;
                    let mut cursor = None;
                    loop {
                        let page = store
                            .export_page(&auditor, "hot-subject", cursor.as_ref(), 64)
                            .expect("export page");
                        total += page.chunk.len() as u64;
                        match page.next_cursor {
                            Some(next) => cursor = Some(next),
                            None => return total,
                        }
                    }
                }),
            ),
        ] {
            let mut hist = LatencyHistogram::new();
            let mut checksum = 0u64;
            for _ in 0..200 {
                let begin = Instant::now();
                checksum = f();
                hist.record(begin.elapsed());
            }
            assert!(checksum > 0, "hot path returned nothing");
            println!(
                "  {path:<12} shards={shards:<3} p50 {:>7}us  p95 {:>7}us  p99 {:>7}us  max {:>7}us",
                hist.percentile_micros(0.50),
                hist.percentile_micros(0.95),
                hist.percentile_micros(0.99),
                hist.max_micros(),
            );
            hot_paths.push(HotPath {
                path,
                shards,
                keys: hot_keys,
                hist,
            });
        }
    }

    let json = render_json(subjects, keys, ops, seed, &cells, &hot_paths);
    std::fs::write("BENCH_gdprbench.json", &json).expect("write BENCH_gdprbench.json");
    println!(
        "\nwrote BENCH_gdprbench.json ({} cells, {} hot-path rows)",
        cells.len(),
        hot_paths.len()
    );
}

fn per_right_json(summary: &RunSummary) -> String {
    let mut out = String::from("[");
    for (i, (right, hist)) in summary.per_right.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"right\": \"{right}\", \"count\": {}, \"p50_micros\": {}, \"p95_micros\": {}, \
             \"p99_micros\": {}}}",
            hist.count(),
            hist.percentile_micros(0.50),
            hist.percentile_micros(0.95),
            hist.percentile_micros(0.99),
        ));
    }
    out.push(']');
    out
}

fn render_json(
    subjects: u64,
    keys: u64,
    ops: u64,
    seed: u64,
    cells: &[Cell],
    hot_paths: &[HotPath],
) -> String {
    let mut out = bench::json_envelope("gdprbench");
    out.push_str(&format!("  \"subjects\": {subjects},\n"));
    out.push_str(&format!("  \"keys_per_subject\": {keys},\n"));
    out.push_str(&format!("  \"operations\": {ops},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"transport\": \"{}\", \"shards\": {}, \"threads\": {}, \
             \"load_ops_per_sec\": {:.1}, \"run_ops_per_sec\": {:.1}, \"run_elapsed_ms\": {}, \
             \"run_p50_micros\": {}, \"run_p99_micros\": {}, \"denials\": {}, \"failures\": {}, \
             \"per_right\": {}}}{}\n",
            cell.workload,
            cell.transport,
            cell.shards,
            cell.threads,
            cell.load.throughput(),
            cell.run.throughput(),
            cell.run.elapsed.as_millis(),
            cell.run.overall.percentile_micros(0.50),
            cell.run.overall.percentile_micros(0.99),
            cell.run.denials,
            cell.run.failures,
            per_right_json(&cell.run),
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"hot_paths\": [\n");
    for (i, hp) in hot_paths.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"shards\": {}, \"subject_keys\": {}, \"p50_micros\": {}, \
             \"p95_micros\": {}, \"p99_micros\": {}, \"max_micros\": {}}}{}\n",
            hp.path,
            hp.shards,
            hp.keys,
            hp.hist.percentile_micros(0.50),
            hp.hist.percentile_micros(0.95),
            hp.hist.percentile_micros(0.99),
            hp.hist.max_micros(),
            if i + 1 == hot_paths.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
