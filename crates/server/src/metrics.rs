//! The server's always-on observability state and its exposition.
//!
//! [`ServerMetrics`] is shared (via `Arc`) by every clone of the
//! dispatcher, both transports and the replication runner. It holds:
//!
//! * one latency histogram per **command family** (fed by
//!   [`crate::dispatch::Dispatcher::handle_frame`], which also feeds the
//!   [`obs::Slowlog`]);
//! * the connection-layer **stage histograms** the engine cannot see —
//!   reactor worker-queue wait and replication apply time (the engine
//!   keeps shard-lock hold and group-commit wait itself);
//! * server identity (start time, transport label) for the `# Server`
//!   `INFO` section.
//!
//! [`Dispatcher::render_prometheus`] renders all of it — plus every
//! pre-existing counter surface (engine, GDPR, clients, replication) —
//! as one Prometheus text-exposition document for the `/metrics`
//! listener in [`crate::metrics_http`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use obs::{AtomicHistogram, LatencyHistogram, PromWriter, Slowlog};

use crate::dispatch::{Dispatcher, CLIENT_STAT_FIELDS};

/// Default `SLOWLOG` threshold: 10 ms, Redis'
/// `slowlog-log-slower-than` default.
pub const DEFAULT_SLOWLOG_THRESHOLD_MICROS: i64 = 10_000;
/// Default `SLOWLOG` ring capacity (Redis' `slowlog-max-len`).
pub const DEFAULT_SLOWLOG_MAX_LEN: usize = 128;

/// The command families latency is tracked per. Coarser than one
/// histogram per command name (bounded label cardinality for Prometheus)
/// but fine enough to separate the paper's cost centres: plain reads,
/// journaled writes, keyspace scans, expiry management, GDPR data-path
/// commands and GDPR rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandFamily {
    /// Per-key reads (`GET`, `HGETALL`, `SISMEMBER`, …).
    Read,
    /// Data writes (`SET`, `DEL`, `HSET`, `SADD`, `FLUSHALL`, …).
    Write,
    /// Keyspace-wide queries (`KEYS`, `SCAN`, `DBSIZE`).
    Scan,
    /// Expiry management (`EXPIRE`, `PEXPIREAT`, `TTL`, `PERSIST`, …).
    Expire,
    /// GDPR data path (`GDPR.PUT`, `GDPR.GET`, `GDPR.SETMETA`, …).
    GdprData,
    /// GDPR subject rights (`GDPR.ERASE`, `GDPR.EXPORT`, `GDPR.KEYSOF`,
    /// `GDPR.GETMETA`, `GDPR.OBJECT`) — the rights also record into
    /// per-right histograms inside `gdpr-core`.
    GdprRight,
    /// Protocol and introspection (`PING`, `INFO`, `SLOWLOG`, `TICK`,
    /// `DIGEST`, `GDPR.AUTH`, `GDPR.STATS`, …).
    Admin,
    /// Anything unrecognised (still timed; the reply is an error).
    Other,
}

impl CommandFamily {
    /// Every family, in the fixed rendering order.
    pub const ALL: [CommandFamily; 8] = [
        CommandFamily::Read,
        CommandFamily::Write,
        CommandFamily::Scan,
        CommandFamily::Expire,
        CommandFamily::GdprData,
        CommandFamily::GdprRight,
        CommandFamily::Admin,
        CommandFamily::Other,
    ];

    /// The family of an upper-cased wire command name.
    #[must_use]
    pub fn classify(name: &str) -> Self {
        match name {
            "GET" | "MGET" | "EXISTS" | "TYPE" | "STRLEN" | "HGET" | "HGETALL" | "HLEN"
            | "SMEMBERS" | "SISMEMBER" | "SCARD" => CommandFamily::Read,
            "SET" | "SETEX" | "PSETEX" | "APPEND" | "INCR" | "DECR" | "INCRBY" | "DECRBY"
            | "DEL" | "UNLINK" | "HSET" | "HMSET" | "HDEL" | "SADD" | "SREM" | "FLUSHALL"
            | "FLUSHDB" => CommandFamily::Write,
            "KEYS" | "SCAN" | "DBSIZE" => CommandFamily::Scan,
            "EXPIRE" | "PEXPIRE" | "EXPIREAT" | "PEXPIREAT" | "PERSIST" | "TTL" | "PTTL" => {
                CommandFamily::Expire
            }
            "GDPR.PUT" | "GDPR.GET" | "GDPR.DEL" | "GDPR.SETMETA" => CommandFamily::GdprData,
            "GDPR.ERASE" | "GDPR.EXPORT" | "GDPR.KEYSOF" | "GDPR.GETMETA" | "GDPR.OBJECT" => {
                CommandFamily::GdprRight
            }
            "PING" | "INFO" | "SHUTDOWN" | "TICK" | "DIGEST" | "REPLSYNC" | "SLOWLOG" => {
                CommandFamily::Admin
            }
            other if other.starts_with("GDPR.") => CommandFamily::Admin,
            _ => CommandFamily::Other,
        }
    }

    /// The stable label value (`family="…"`, `latency_cmd_…`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CommandFamily::Read => "read",
            CommandFamily::Write => "write",
            CommandFamily::Scan => "scan",
            CommandFamily::Expire => "expire",
            CommandFamily::GdprData => "gdpr_data",
            CommandFamily::GdprRight => "gdpr_right",
            CommandFamily::Admin => "admin",
            CommandFamily::Other => "other",
        }
    }
}

/// Always-on server observability state, shared by dispatcher clones.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    /// Unix timestamp (seconds) the server started, for `# Server`.
    started_unix_secs: u64,
    /// Transport label, set once by the transport that binds.
    transport: OnceLock<&'static str>,
    families: [AtomicHistogram; CommandFamily::ALL.len()],
    /// Time batches spend in the reactor → worker-pool queue.
    pub(crate) worker_queue_wait: AtomicHistogram,
    /// Time a replica spends applying one streamed journal record.
    pub(crate) repl_apply: AtomicHistogram,
    /// The `SLOWLOG` ring.
    pub slowlog: Slowlog,
    /// `/metrics` scrapes served (itself exported, Prometheus-style).
    pub(crate) scrapes: AtomicU64,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new(DEFAULT_SLOWLOG_THRESHOLD_MICROS, DEFAULT_SLOWLOG_MAX_LEN)
    }
}

impl ServerMetrics {
    /// Create the metrics state with an explicit slowlog configuration.
    #[must_use]
    pub fn new(slowlog_threshold_micros: i64, slowlog_max_len: usize) -> Self {
        ServerMetrics {
            started: Instant::now(),
            started_unix_secs: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            transport: OnceLock::new(),
            families: std::array::from_fn(|_| AtomicHistogram::new()),
            worker_queue_wait: AtomicHistogram::new(),
            repl_apply: AtomicHistogram::new(),
            slowlog: Slowlog::new(slowlog_threshold_micros, slowlog_max_len),
            scrapes: AtomicU64::new(0),
        }
    }

    /// Seconds since the server (strictly: this metrics state) started.
    #[must_use]
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Unix timestamp (seconds) of server start.
    #[must_use]
    pub fn started_unix_secs(&self) -> u64 {
        self.started_unix_secs
    }

    /// Record which transport is serving (first caller wins; both
    /// transports set it at bind).
    pub fn set_transport(&self, label: &'static str) {
        let _ = self.transport.set(label);
    }

    /// The transport label, `"unbound"` before any transport bound.
    #[must_use]
    pub fn transport(&self) -> &'static str {
        self.transport.get().copied().unwrap_or("unbound")
    }

    /// Record one completed request into its family histogram.
    pub fn record_command(&self, family: CommandFamily, latency: Duration) {
        self.families[family as usize].record(latency);
    }

    /// Record how long one batch waited in the reactor → worker queue.
    pub fn record_worker_queue_wait(&self, wait: Duration) {
        self.worker_queue_wait.record(wait);
    }

    /// Record how long applying one streamed journal record took.
    pub fn record_repl_apply(&self, took: Duration) {
        self.repl_apply.record(took);
    }

    /// Per-family histogram snapshots, in [`CommandFamily::ALL`] order.
    #[must_use]
    pub fn family_snapshots(&self) -> Vec<(&'static str, LatencyHistogram)> {
        CommandFamily::ALL
            .iter()
            .map(|f| (f.label(), self.families[*f as usize].snapshot()))
            .collect()
    }

    /// Connection-layer stage histogram snapshots (`worker_queue_wait`,
    /// `repl_apply`), in fixed order.
    #[must_use]
    pub fn stage_snapshots(&self) -> Vec<(&'static str, LatencyHistogram)> {
        vec![
            ("worker_queue_wait", self.worker_queue_wait.snapshot()),
            ("repl_apply", self.repl_apply.snapshot()),
        ]
    }
}

impl Dispatcher {
    /// The latency report shared verbatim (same names, same order, same
    /// per-line payload) by `INFO`'s `# Latency` section and the
    /// `latency_*` lines of `GDPR.STATS`; only the name/value separator
    /// differs between the two surfaces.
    #[must_use]
    pub fn latency_lines(&self, sep: char) -> Vec<String> {
        let mut lines = Vec::new();
        for (family, hist) in self.metrics().family_snapshots() {
            lines.push(format!(
                "latency_cmd_{family}{sep}{}",
                hist.summary_fields()
            ));
        }
        if let Some(store) = self.gdpr_store() {
            for (right, hist) in store.right_latencies() {
                lines.push(format!(
                    "latency_right_{right}{sep}{}",
                    hist.summary_fields()
                ));
            }
        }
        for (stage, hist) in self
            .raw_engine()
            .stage_latencies()
            .into_iter()
            .chain(self.metrics().stage_snapshots())
        {
            lines.push(format!(
                "latency_stage_{stage}{sep}{}",
                hist.summary_fields()
            ));
        }
        lines
    }

    /// Render the full Prometheus text-exposition document: the latency
    /// histograms plus every counter the text surfaces (`INFO`,
    /// `GDPR.STATS`) already expose — engine, journal, TTL index, GDPR,
    /// clients and replication — under the same names those surfaces use.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics();
        metrics.scrapes.fetch_add(1, Ordering::Relaxed);
        let transport = metrics.transport();
        let mut w = PromWriter::new();

        // --- server identity -------------------------------------------------
        w.gauge(
            "gdpr_server_uptime_seconds",
            "Seconds since the server started.",
            &[],
            metrics.uptime_seconds(),
        );
        w.counter(
            "gdpr_server_metrics_scrapes",
            "Prometheus scrapes served (this one included).",
            &[],
            metrics.scrapes.load(Ordering::Relaxed),
        );

        // --- latency histograms ----------------------------------------------
        for (family, hist) in metrics.family_snapshots() {
            w.histogram(
                "gdpr_server_command_latency_seconds",
                "Request latency through the dispatcher, by command family.",
                &[("family", family), ("transport", transport)],
                &hist,
            );
        }
        if let Some(store) = self.gdpr_store() {
            for (right, hist) in store.right_latencies() {
                w.histogram(
                    "gdpr_right_latency_seconds",
                    "GDPR subject-right fulfilment latency, by right.",
                    &[("right", right)],
                    &hist,
                );
            }
        }
        for (stage, hist) in self
            .raw_engine()
            .stage_latencies()
            .into_iter()
            .chain(metrics.stage_snapshots())
        {
            w.histogram(
                "gdpr_server_stage_latency_seconds",
                "Time spent in one internal request-path stage.",
                &[("stage", stage)],
                &hist,
            );
        }

        // --- dispatcher + slowlog --------------------------------------------
        let dispatch = self.stats();
        w.counter(
            "gdpr_server_requests",
            "Requests handled (including errors).",
            &[],
            dispatch.requests,
        );
        w.counter(
            "gdpr_server_request_errors",
            "Requests answered with an error reply.",
            &[],
            dispatch.errors,
        );
        w.gauge(
            "gdpr_server_slowlog_len",
            "Entries currently retained in the SLOWLOG ring.",
            &[],
            metrics.slowlog.len() as u64,
        );

        // --- connection layer (same descriptor table as INFO/GDPR.STATS) -----
        let clients = self.client_stats();
        for (name, is_gauge, get) in CLIENT_STAT_FIELDS {
            let help = "Connection-layer counter; see the # Clients INFO section.";
            if *is_gauge {
                w.gauge(name, help, &[], get(&clients));
            } else {
                w.counter(name, help, &[], get(&clients));
            }
        }

        // --- engine ----------------------------------------------------------
        let engine = self.raw_engine().stats();
        let counters: &[(&str, &str, u64)] = &[
            (
                "engine_commands_processed",
                "Commands executed by the storage engine.",
                engine.commands_processed,
            ),
            ("engine_reads", "Read commands executed.", engine.reads),
            ("engine_writes", "Write commands executed.", engine.writes),
            (
                "keyspace_hits",
                "Lookups that found a live key.",
                engine.db.keyspace_hits,
            ),
            (
                "keyspace_misses",
                "Lookups that missed.",
                engine.db.keyspace_misses,
            ),
            (
                "expired_keys",
                "Keys removed by expiry.",
                engine.db.expired_keys,
            ),
            (
                "deleted_keys",
                "Keys removed by explicit deletion.",
                engine.db.deleted_keys,
            ),
            (
                "expire_cycles",
                "Active-expiry cycles run.",
                engine.expire_cycles,
            ),
            (
                "ttl_inserts",
                "Deadline-index insertions.",
                engine.deadline_index.inserts,
            ),
            (
                "ttl_fired",
                "Deadlines fired by the index.",
                engine.deadline_index.fired,
            ),
            (
                "ttl_wheel_cascades",
                "Timer-wheel level cascades.",
                engine.deadline_index.cascades,
            ),
            (
                "ttl_wheel_stale_dropped",
                "Stale wheel entries dropped lazily.",
                engine.deadline_index.stale_dropped,
            ),
            (
                "aof_records",
                "Records appended to the journal.",
                engine.aof.records_appended,
            ),
            ("aof_fsyncs", "Journal fsyncs issued.", engine.aof.fsyncs),
            (
                "aof_rewrites",
                "Journal rewrites completed.",
                engine.aof.rewrites,
            ),
            (
                "aof_group_commits",
                "Group-commit fsync batches.",
                engine.aof.group_commits,
            ),
            (
                "aof_group_commit_records",
                "Records covered by group commits.",
                engine.aof.group_commit_records,
            ),
            (
                "device_bytes_written",
                "Bytes written to the storage device.",
                engine.device.bytes_written,
            ),
            (
                "device_syncs",
                "Device sync operations.",
                engine.device.syncs,
            ),
        ];
        for (name, help, value) in counters {
            w.counter(name, help, &[], *value);
        }
        let gauges: &[(&str, &str, u64)] = &[
            (
                "ttl_entries",
                "Live entries in the deadline index.",
                engine.deadline_index.entries,
            ),
            (
                "aof_segments",
                "Journal segments (one per shard).",
                engine.aof_segments,
            ),
            (
                "aof_unsynced_records",
                "Appended records not yet durable (the crash-loss window).",
                engine.aof.unsynced_records,
            ),
            (
                "device_bytes_on_device",
                "Bytes currently occupying the device.",
                engine.device.bytes_on_device,
            ),
        ];
        for (name, help, value) in gauges {
            w.gauge(name, help, &[], *value);
        }
        // Bounded-memory accounting: the live footprint against the
        // configured ceiling, and the evictor's counter labelled with the
        // policy that produced the evictions.
        w.gauge(
            "mem_bytes",
            "Approximate bytes resident in the keyspace.",
            &[],
            engine.db.mem_bytes,
        );
        w.gauge(
            "maxmemory",
            "Configured maxmemory ceiling in bytes (0 = unlimited).",
            &[],
            engine.max_memory,
        );
        w.counter(
            "evicted_keys",
            "Keys evicted to stay under maxmemory.",
            &[("policy", engine.eviction_policy.label())],
            engine.db.evicted_keys,
        );

        // --- compliance layer ------------------------------------------------
        if let Some(store) = self.gdpr_store() {
            let stats = store.stats();
            let gdpr: &[(&str, &str, u64)] = &[
                (
                    "gdpr_allowed_ops",
                    "Operations admitted by the compliance checks.",
                    stats.allowed_ops,
                ),
                (
                    "gdpr_denied_ops",
                    "Operations rejected by the compliance checks.",
                    stats.denied_ops,
                ),
                (
                    "gdpr_audit_records",
                    "Audit records emitted.",
                    stats.audit_records,
                ),
                (
                    "gdpr_erased_by_request",
                    "Keys erased through the right to be forgotten.",
                    stats.erased_by_request,
                ),
                (
                    "gdpr_erased_by_retention",
                    "Keys erased because retention elapsed.",
                    stats.erased_by_retention,
                ),
                (
                    "gdpr_cache_hits",
                    "GETs served from the TinyLFU hot-read cache.",
                    stats.cache_hits,
                ),
                (
                    "gdpr_cache_misses",
                    "GETs that took the full compliance slow path.",
                    stats.cache_misses,
                ),
                (
                    "gdpr_cache_admissions",
                    "Values admitted into the hot tier by TinyLFU.",
                    stats.cache_admissions,
                ),
                (
                    "gdpr_cache_invalidations",
                    "Hot entries dropped by mutation, erasure or expiry.",
                    stats.cache_invalidations,
                ),
            ];
            for (name, help, value) in gdpr {
                w.counter(name, help, &[], *value);
            }
            w.gauge(
                "gdpr_hot_cache_enabled",
                "1 while the TinyLFU hot-read cache is enabled.",
                &[],
                u64::from(store.hot_cache_enabled()),
            );
        }

        // --- replication -----------------------------------------------------
        let repl = self.replication().info();
        if repl.is_replica {
            w.gauge(
                "repl_connected",
                "1 while the replica's stream to its primary is up.",
                &[],
                u64::from(repl.connected),
            );
            w.gauge(
                "repl_applied_seq",
                "Last journal sequence applied locally.",
                &[],
                repl.applied_seq,
            );
            w.gauge(
                "repl_primary_seq",
                "Primary's journal sequence as last advertised.",
                &[],
                repl.primary_seq,
            );
            w.gauge(
                "repl_lag_records",
                "Records the replica is behind its primary.",
                &[],
                repl.lag_records,
            );
            w.counter(
                "repl_full_syncs",
                "Full resynchronisations performed.",
                &[],
                repl.full_syncs,
            );
            w.counter(
                "repl_records_applied",
                "Streamed records applied.",
                &[],
                repl.records_applied,
            );
        } else {
            w.gauge(
                "repl_connected_replicas",
                "Replication streams currently attached.",
                &[],
                repl.connected_replicas as u64,
            );
            w.counter(
                "repl_records_streamed",
                "Journal records streamed to replicas.",
                &[],
                repl.records_streamed,
            );
            w.counter(
                "repl_lost_streams",
                "Replica streams dropped (backlog overrun or error).",
                &[],
                repl.lost_streams,
            );
        }

        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_the_wire_surface() {
        assert_eq!(CommandFamily::classify("GET"), CommandFamily::Read);
        assert_eq!(CommandFamily::classify("SET"), CommandFamily::Write);
        assert_eq!(CommandFamily::classify("KEYS"), CommandFamily::Scan);
        assert_eq!(CommandFamily::classify("PEXPIREAT"), CommandFamily::Expire);
        assert_eq!(CommandFamily::classify("GDPR.PUT"), CommandFamily::GdprData);
        assert_eq!(
            CommandFamily::classify("GDPR.ERASE"),
            CommandFamily::GdprRight
        );
        assert_eq!(CommandFamily::classify("SLOWLOG"), CommandFamily::Admin);
        assert_eq!(CommandFamily::classify("GDPR.AUTH"), CommandFamily::Admin);
        assert_eq!(CommandFamily::classify("BOGUS"), CommandFamily::Other);
    }

    #[test]
    fn family_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            CommandFamily::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), CommandFamily::ALL.len());
    }

    #[test]
    fn metrics_record_and_snapshot() {
        let m = ServerMetrics::default();
        m.record_command(CommandFamily::Read, Duration::from_micros(100));
        m.record_command(CommandFamily::Read, Duration::from_micros(200));
        m.record_command(CommandFamily::Write, Duration::from_micros(5_000));
        let snaps = m.family_snapshots();
        assert_eq!(snaps[0].0, "read");
        assert_eq!(snaps[0].1.count(), 2);
        assert_eq!(snaps[1].0, "write");
        assert_eq!(snaps[1].1.count(), 1);
        assert_eq!(
            m.slowlog.threshold_micros(),
            DEFAULT_SLOWLOG_THRESHOLD_MICROS
        );
    }

    #[test]
    fn transport_label_first_set_wins() {
        let m = ServerMetrics::default();
        assert_eq!(m.transport(), "unbound");
        m.set_transport("reactor");
        m.set_transport("threads");
        assert_eq!(m.transport(), "reactor");
    }
}
