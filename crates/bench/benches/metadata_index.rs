//! Ablation: cost of maintaining and querying the GDPR metadata — the
//! shadow-record encoding and the subject/purpose inverted indexes
//! (DESIGN.md §5.4, paper §5.1 "efficient metadata indexing").

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdpr_core::index::MetadataIndex;
use gdpr_core::metadata::{PersonalMetadata, Region};

fn sample_metadata(i: usize) -> PersonalMetadata {
    PersonalMetadata::new(&format!("subject-{}", i % 1_000))
        .with_purpose("billing")
        .with_purpose("analytics")
        .with_recipient("processor-1")
        .with_location(Region::Eu)
        .with_expiry_at(2_000_000_000_000)
}

fn bench_metadata(c: &mut Criterion) {
    let mut group = c.benchmark_group("metadata_index");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    group.bench_function("metadata_encode", |b| {
        let meta = sample_metadata(1);
        b.iter(|| meta.encode());
    });
    group.bench_function("metadata_decode", |b| {
        let bytes = sample_metadata(1).encode();
        b.iter(|| PersonalMetadata::decode(&bytes).unwrap());
    });

    for &prepopulated in &[1_000usize, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("index_insert", prepopulated),
            &prepopulated,
            |b, &n| {
                let mut index = MetadataIndex::new();
                for i in 0..n {
                    index.insert(
                        &format!("key{i}"),
                        &format!("subject-{}", i % 1_000),
                        ["billing".to_string()],
                    );
                }
                let mut i = n;
                b.iter(|| {
                    i += 1;
                    index.insert(
                        &format!("key{i}"),
                        &format!("subject-{}", i % 1_000),
                        ["billing".to_string()],
                    );
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("index_subject_lookup", prepopulated),
            &prepopulated,
            |b, &n| {
                let mut index = MetadataIndex::new();
                for i in 0..n {
                    index.insert(
                        &format!("key{i}"),
                        &format!("subject-{}", i % 1_000),
                        ["billing".to_string()],
                    );
                }
                b.iter(|| index.keys_of_subject("subject-500"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_metadata);
criterion_main!(benches);
