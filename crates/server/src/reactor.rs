//! The event-driven connection layer: one readiness-polling reactor
//! thread plus a fixed worker pool.
//!
//! The thread-per-connection transport in [`crate::tcp`] costs one OS
//! thread (stack, scheduler state, context switches) per client, which
//! collapses under the thousands of mostly idle sessions a
//! GDPRbench-style regulator/processor workload holds open. This module
//! replaces that with the classic reactor shape:
//!
//! * a single **reactor thread** owns the listener and every connection
//!   socket, all non-blocking, registered with a level-triggered
//!   [`polling::Poller`] (epoll on Linux, `poll(2)` elsewhere);
//! * each connection is a small **state machine**: readable events
//!   accumulate bytes into the incremental [`Decoder`], complete frames
//!   are batched and handed to the worker pool, replies come back as one
//!   encoded buffer and are flushed under write-readiness gating;
//! * a fixed **worker pool** (default `min(cores, engine shards)`)
//!   executes [`Dispatcher`] batches off the reactor thread, so a slow
//!   command (a big `GDPR.EXPORT`, a strict-fsync write) never stalls
//!   the event loop, and hands completions back through a queue plus
//!   [`polling::Poller::notify`].
//!
//! Idle connections cost one registered descriptor and a ~100-byte state
//! machine — no thread, no pinned read buffer (a shared scratch buffer
//! serves all reads). The transport semantics match the threads
//! implementation exactly: same pipelining, same
//! `-ERR max connections reached` refusal, same idle timeout measured
//! from the last *complete* frame, same drain-on-shutdown guarantee
//! (every request whose bytes reached the server is answered), and the
//! same `REPLSYNC` handoff — the socket is quiesced, deregistered and
//! given to a blocking replication feeder thread.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use polling::{Event, Poller};
use resp::decode::Decoder;
use resp::encode::encode_frame;
use resp::Frame;

use crate::dispatch::{Dispatcher, Session};
use crate::tcp::{
    at_connection_limit, is_shutdown_command, reject_over_limit, shrink_buffer, ServerConfig,
};

/// Poller key of the listening socket; connection slot `i` maps to key
/// `i + 1`.
const LISTENER_KEY: usize = 0;

/// Cap on decoded-but-undispatched frames per connection. A pipelining
/// flood beyond this pauses reads for that connection (level-triggered
/// polling resumes them as soon as the in-flight batch completes) so one
/// client cannot buffer unbounded work.
const MAX_PENDING_FRAMES: usize = 4096;

/// Cap on read syscalls per connection per wakeup, so one firehose client
/// cannot monopolize the event loop; remaining bytes re-report on the
/// next wait (level-triggered).
const MAX_READ_PASSES: usize = 8;

/// How long the drain phase waits for in-flight batches and final
/// flushes before force-closing survivors.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// A batch of decoded frames travelling to the worker pool. The session
/// rides along (a connection has at most one batch in flight, so the
/// worker owns it exclusively while dispatching).
struct Job {
    key: usize,
    frames: Vec<Frame>,
    session: Session,
    /// When the reactor enqueued the batch; the worker that pops it
    /// records the difference as queue wait.
    enqueued_at: Instant,
}

/// A completed batch travelling back to the reactor.
struct Done {
    key: usize,
    /// All replies of the batch, already RESP-encoded back-to-back.
    replies: Vec<u8>,
    session: Session,
    /// The batch contained a `SHUTDOWN` command.
    shutdown_seen: bool,
}

#[derive(Default)]
struct JobQueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The reactor → workers hand-off queue.
struct JobQueue {
    state: Mutex<JobQueueState>,
    ready: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            state: Mutex::new(JobQueueState::default()),
            ready: Condvar::new(),
        }
    }

    /// Enqueue a batch; returns the queue depth after the push (recorded
    /// as the worker-queue high-water mark).
    fn push(&self, job: Job) -> usize {
        let mut state = self.state.lock().expect("job queue lock");
        state.jobs.push_back(job);
        let depth = state.jobs.len();
        drop(state);
        self.ready.notify_one();
        depth
    }

    /// Blocking pop; `None` once the queue is closed *and* empty, so
    /// workers finish every outstanding batch before exiting (the drain
    /// guarantee).
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("job queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("job queue wait");
        }
    }

    fn close(&self) {
        self.state.lock().expect("job queue lock").closed = true;
        self.ready.notify_all();
    }
}

/// Worker-pool size: explicit config, else `min(cores, shards)` — more
/// workers than engine shards only adds lock contention.
fn worker_count(config: &ServerConfig, dispatcher: &Dispatcher) -> usize {
    if config.workers != 0 {
        return config.workers;
    }
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    cores.min(dispatcher.raw_engine().shard_count()).max(1)
}

/// One worker: pop a batch, dispatch every frame, encode the replies into
/// one buffer, hand the completion back and wake the reactor.
fn worker_loop(
    jobs: &JobQueue,
    completions: &Mutex<Vec<Done>>,
    poller: &Poller,
    dispatcher: &Dispatcher,
) {
    while let Some(mut job) = jobs.pop() {
        dispatcher
            .metrics()
            .record_worker_queue_wait(job.enqueued_at.elapsed());
        let mut replies = Vec::new();
        let mut shutdown_seen = false;
        for frame in &job.frames {
            if is_shutdown_command(frame) {
                shutdown_seen = true;
            }
            let reply = dispatcher.handle_frame(frame, &mut job.session);
            replies.extend_from_slice(&encode_frame(&reply));
        }
        completions.lock().expect("completion lock").push(Done {
            key: job.key,
            replies,
            session: job.session,
            shutdown_seen,
        });
        poller.notify();
    }
}

/// Per-connection state machine. Note what is *not* here: no thread, no
/// read buffer (reads go through the reactor's shared scratch buffer) —
/// an idle connection is this struct plus a registered descriptor.
struct Conn {
    stream: TcpStream,
    decoder: Decoder,
    /// `None` while a batch (and the session it carries) is at a worker.
    session: Option<Session>,
    /// Complete frames decoded but not yet dispatched.
    pending: Vec<Frame>,
    /// Encoded replies awaiting the socket; `out_pos` marks how far the
    /// kernel has accepted them.
    outbox: Vec<u8>,
    out_pos: usize,
    /// A batch is in flight at a worker.
    busy: bool,
    /// Interest currently registered with the poller.
    reg_read: bool,
    reg_write: bool,
    /// No more input will be read (EOF, protocol error, drain, REPLSYNC).
    input_closed: bool,
    /// Close once the outbox is flushed.
    close_after_flush: bool,
    /// The socket errored; drop it as soon as no worker holds its batch.
    dead: bool,
    /// A `REPLSYNC` arrived: once quiesced, hand the socket to a blocking
    /// replication feeder instead of closing it.
    replsync: bool,
    /// Encoded protocol-error reply to append *after* all in-flight
    /// replies, preserving reply order.
    error_reply: Option<Vec<u8>>,
    /// When the last complete request frame arrived (idle timeout is
    /// measured from here, so slow-loris byte-tricklers still idle out).
    last_frame: Instant,
}

impl Conn {
    fn new(stream: TcpStream, max_frame_bytes: usize) -> Self {
        Conn {
            stream,
            decoder: Decoder::with_max_frame_bytes(max_frame_bytes),
            session: Some(Session::new()),
            pending: Vec::new(),
            outbox: Vec::new(),
            out_pos: 0,
            busy: false,
            reg_read: true,
            reg_write: false,
            input_closed: false,
            close_after_flush: false,
            dead: false,
            replsync: false,
            error_reply: None,
            last_frame: Instant::now(),
        }
    }

    fn outbox_flushed(&self) -> bool {
        self.out_pos >= self.outbox.len()
    }

    /// The connection has nothing queued anywhere: no in-flight batch, no
    /// undispatched frames, no unflushed replies.
    fn quiesced(&self) -> bool {
        !self.busy && self.pending.is_empty() && self.outbox_flushed()
    }
}

/// Handle to a running reactor transport (constructed through
/// [`crate::tcp::TcpServer::bind`]).
pub(crate) struct ReactorServer {
    dispatcher: Dispatcher,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    poller: Arc<Poller>,
    reactor_thread: Option<std::thread::JoinHandle<()>>,
}

impl ReactorServer {
    pub(crate) fn start(
        dispatcher: Dispatcher,
        listener: TcpListener,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Arc::new(Poller::new()?);
        poller.add(&listener, Event::readable(LISTENER_KEY))?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let thread_dispatcher = dispatcher.clone();
        let thread_poller = Arc::clone(&poller);
        let thread_shutdown = Arc::clone(&shutdown);
        let reactor_thread = std::thread::Builder::new()
            .name("gdpr-server-reactor".to_string())
            .spawn(move || {
                Reactor::new(
                    listener,
                    thread_dispatcher,
                    config,
                    thread_poller,
                    thread_shutdown,
                )
                .run();
            })?;

        Ok(ReactorServer {
            dispatcher,
            addr,
            shutdown,
            poller,
            reactor_thread: Some(reactor_thread),
        })
    }

    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub(crate) fn dispatcher(&self) -> &Dispatcher {
        &self.dispatcher
    }

    pub(crate) fn is_shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.poller.notify();
    }

    pub(crate) fn shutdown(&mut self) {
        self.request_shutdown();
        if let Some(handle) = self.reactor_thread.take() {
            let _ = handle.join();
        }
    }
}

/// The reactor thread's whole world.
struct Reactor {
    listener: Option<TcpListener>,
    dispatcher: Dispatcher,
    config: ServerConfig,
    poller: Arc<Poller>,
    shutdown: Arc<AtomicBool>,
    jobs: Arc<JobQueue>,
    completions: Arc<Mutex<Vec<Done>>>,
    /// Connection slab: slot `i` serves poller key `i + 1`.
    conns: Vec<Option<Conn>>,
    free_slots: Vec<usize>,
    /// Shared read buffer — connections do not pin per-connection read
    /// memory while idle, which is most of the reactor's RSS win.
    scratch: Vec<u8>,
    workers: Vec<std::thread::JoinHandle<()>>,
    feeders: Vec<std::thread::JoinHandle<()>>,
    draining: bool,
    drain_deadline: Instant,
    last_sweep: Instant,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        dispatcher: Dispatcher,
        config: ServerConfig,
        poller: Arc<Poller>,
        shutdown: Arc<AtomicBool>,
    ) -> Self {
        let jobs = Arc::new(JobQueue::new());
        let completions = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..worker_count(&config, &dispatcher))
            .map(|i| {
                let jobs = Arc::clone(&jobs);
                let completions = Arc::clone(&completions);
                let poller = Arc::clone(&poller);
                let dispatcher = dispatcher.clone();
                std::thread::Builder::new()
                    .name(format!("gdpr-server-worker-{i}"))
                    .spawn(move || worker_loop(&jobs, &completions, &poller, &dispatcher))
                    .expect("spawn worker thread")
            })
            .collect();
        Reactor {
            listener: Some(listener),
            dispatcher,
            config,
            poller,
            shutdown,
            jobs,
            completions,
            conns: Vec::new(),
            free_slots: Vec::new(),
            scratch: vec![0u8; 64 * 1024],
            workers,
            feeders: Vec::new(),
            draining: false,
            drain_deadline: Instant::now(),
            last_sweep: Instant::now(),
        }
    }

    /// Idle sweeps (and therefore shutdown-flag checks with no events)
    /// happen at least this often.
    fn sweep_interval(&self) -> Duration {
        (self.config.read_timeout / 4)
            .min(Duration::from_secs(1))
            .max(self.config.poll_interval)
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = if self.draining {
                self.config.poll_interval.min(Duration::from_millis(25))
            } else {
                self.sweep_interval()
            };
            let _ = self.poller.wait(&mut events, Some(timeout));
            self.dispatcher.client_cells().reactor_wakeup();

            // Completions first, so replies head for the socket in the
            // same iteration their batch finished.
            self.process_completions();

            let mut accept_ready = false;
            for &event in &events {
                if event.key == LISTENER_KEY {
                    accept_ready = true;
                    continue;
                }
                let slot = event.key - 1;
                if self.conns.get(slot).is_none_or(Option::is_none) {
                    continue; // closed earlier this iteration
                }
                if event.readable {
                    self.read_pass(slot);
                }
                if event.writable {
                    self.flush(slot);
                }
                self.finish_io(slot);
            }
            if accept_ready && !self.draining {
                self.accept_pass();
            }

            if self.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining && self.drain_tick() {
                break;
            }
            if self.last_sweep.elapsed() >= self.sweep_interval() {
                self.idle_sweep();
                self.last_sweep = Instant::now();
            }
        }
        self.teardown();
    }

    /// Apply one completed batch: replies into the outbox (stealing the
    /// worker's buffer when possible), session back, next batch out.
    fn process_completions(&mut self) {
        let done_batch: Vec<Done> = {
            let mut guard = self.completions.lock().expect("completion lock");
            std::mem::take(&mut *guard)
        };
        for mut done in done_batch {
            if done.shutdown_seen {
                self.shutdown.store(true, Ordering::SeqCst);
            }
            let slot = done.key - 1;
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            conn.busy = false;
            conn.session = Some(done.session);
            if conn.outbox.is_empty() && conn.out_pos == 0 {
                // Reuse the worker's buffer wholesale instead of copying.
                std::mem::swap(&mut conn.outbox, &mut done.replies);
            } else {
                conn.outbox.extend_from_slice(&done.replies);
            }
            if !conn.pending.is_empty() {
                self.start_batch(slot);
            }
            self.finish_io(slot);
        }
    }

    /// Accept every queued connection (the listener is level-triggered).
    fn accept_pass(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    let clients = self.dispatcher.client_cells();
                    if at_connection_limit(
                        self.config.max_connections,
                        clients.snapshot().connected,
                    ) {
                        reject_over_limit(stream, clients);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let slot = self.free_slots.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    if self.poller.add(&stream, Event::readable(slot + 1)).is_err() {
                        self.free_slots.push(slot);
                        continue;
                    }
                    self.dispatcher.client_cells().connection_opened();
                    self.conns[slot] = Some(Conn::new(stream, self.config.max_frame_bytes));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Read until the socket runs dry (or the pass/backpressure caps
    /// kick in), decoding complete frames into the pending batch.
    fn read_pass(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.input_closed || conn.dead {
            return;
        }
        let mut decoded_any = false;
        for _ in 0..MAX_READ_PASSES {
            if conn.pending.len() >= MAX_PENDING_FRAMES {
                break; // backpressure: pause reads until the batch drains
            }
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.input_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.decoder.feed(&self.scratch[..n]);
                    loop {
                        match conn.decoder.next_frame() {
                            Ok(Some(frame)) => {
                                decoded_any = true;
                                if resp::repl::is_replsync_command(&frame) {
                                    // Quiesce, then hand the socket to a
                                    // blocking replication feeder; bytes
                                    // after the handshake belong to the
                                    // replication protocol, not RESP.
                                    conn.replsync = true;
                                    conn.input_closed = true;
                                    break;
                                }
                                conn.pending.push(frame);
                            }
                            Ok(None) => break,
                            Err(e) => {
                                // Protocol error: the stream offset is
                                // unrecoverable. Answer everything decoded
                                // before it, then this error, then close.
                                conn.error_reply =
                                    Some(encode_frame(&Frame::Error(format!("ERR {e}"))));
                                conn.input_closed = true;
                                break;
                            }
                        }
                    }
                    if conn.input_closed {
                        break;
                    }
                    if n < self.scratch.len() {
                        break; // socket very likely drained
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if decoded_any {
            conn.last_frame = Instant::now();
        }
        if !conn.busy && !conn.pending.is_empty() {
            self.start_batch(slot);
        }
    }

    /// Hand the pending frames (and the session) to the worker pool.
    fn start_batch(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let Some(session) = conn.session.take() else {
            return; // defensive: a batch is already in flight
        };
        conn.busy = true;
        let frames = std::mem::take(&mut conn.pending);
        let depth = self.jobs.push(Job {
            key: slot + 1,
            frames,
            session,
            enqueued_at: Instant::now(),
        });
        self.dispatcher
            .client_cells()
            .observe_worker_queue_depth(depth as u64);
    }

    /// Write as much of the outbox as the socket accepts right now.
    fn flush(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        while conn.out_pos < conn.outbox.len() {
            match conn.stream.write(&conn.outbox[conn.out_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.dead {
            conn.outbox.clear();
            conn.out_pos = 0;
            conn.pending.clear();
            conn.input_closed = true;
        } else if conn.outbox_flushed() && !conn.outbox.is_empty() {
            // Batch fully delivered: reuse the buffer, but never let one
            // oversized reply (a big export) pin memory for the
            // connection's lifetime.
            conn.out_pos = 0;
            shrink_buffer(&mut conn.outbox, self.config.buffer_cap_bytes);
        }
    }

    /// Post-I/O bookkeeping for a connection: attach a deferred protocol
    /// error once in-flight replies are out, re-register interest, close
    /// or hand off when fully quiesced.
    fn finish_io(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if !conn.busy && conn.pending.is_empty() {
            if let Some(err) = conn.error_reply.take() {
                conn.outbox.extend_from_slice(&err);
                conn.close_after_flush = true;
                self.flush(slot);
            }
        }
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let closing = conn.dead
            || (conn.quiesced() && (conn.close_after_flush || conn.input_closed || conn.replsync));
        if closing && !conn.busy {
            if conn.replsync && !conn.dead {
                self.handoff_replsync(slot);
            } else {
                self.close_conn(slot);
            }
            return;
        }
        self.update_interest(slot);
    }

    /// Keep the poller's interest set in line with what the state machine
    /// can actually use right now.
    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let want_read = !conn.input_closed && !conn.dead && conn.pending.len() < MAX_PENDING_FRAMES;
        let want_write = !conn.outbox_flushed();
        if want_read != conn.reg_read || want_write != conn.reg_write {
            let event = Event {
                key: slot + 1,
                readable: want_read,
                writable: want_write,
            };
            if self.poller.modify(&conn.stream, event).is_ok() {
                conn.reg_read = want_read;
                conn.reg_write = want_write;
            }
        }
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.delete(&conn.stream);
            self.dispatcher.client_cells().connection_closed();
            self.free_slots.push(slot);
        }
    }

    /// Turn a quiesced `REPLSYNC` connection back into a blocking socket
    /// and hand it to a replication feeder thread (the stream protocol is
    /// long-lived and blocking by design; the feeder watches the shutdown
    /// flag just like the threads transport's handler does).
    fn handoff_replsync(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        self.free_slots.push(slot);
        let _ = self.poller.delete(&conn.stream);
        let mut stream = conn.stream;
        let dispatcher = self.dispatcher.clone();
        let shutdown = Arc::clone(&self.shutdown);
        let poll_interval = self.config.poll_interval;
        let write_timeout = self.config.write_timeout;
        let feeder = std::thread::Builder::new()
            .name("gdpr-server-replfeed".to_string())
            .spawn(move || {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(poll_interval));
                let _ = stream.set_write_timeout(Some(write_timeout));
                crate::replication::serve_stream(
                    &mut stream,
                    &dispatcher,
                    &shutdown,
                    poll_interval,
                );
                dispatcher.client_cells().connection_closed();
            })
            .expect("spawn replication feeder");
        self.feeders.push(feeder);
    }

    /// Sweep for connections idle past the read timeout. Only truly idle
    /// connections qualify: anything with an in-flight batch, queued
    /// frames or unflushed replies is working, not idle.
    fn idle_sweep(&mut self) {
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if !conn.quiesced() || conn.input_closed || conn.dead {
                continue;
            }
            if conn.last_frame.elapsed() > self.config.read_timeout {
                self.dispatcher.client_cells().idle_timeout();
                conn.outbox
                    .extend_from_slice(&encode_frame(&Frame::Error("ERR idle timeout".into())));
                conn.close_after_flush = true;
                conn.input_closed = true;
                self.flush(slot);
                self.finish_io(slot);
            }
        }
    }

    /// Enter the drain phase: stop accepting, take one final read pass
    /// over every connection (bytes already queued on sockets must be
    /// answered), then refuse further input.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Instant::now() + DRAIN_DEADLINE;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.delete(&listener);
        }
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.read_pass(slot);
            }
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.input_closed = true;
            }
            if self.conns[slot].is_some() {
                self.flush(slot);
                self.finish_io(slot);
            }
        }
    }

    /// One drain iteration: true once every connection is gone (or the
    /// deadline forces the stragglers).
    fn drain_tick(&mut self) -> bool {
        if Instant::now() >= self.drain_deadline {
            for slot in 0..self.conns.len() {
                if self.conns[slot].is_some() {
                    self.close_conn(slot);
                }
            }
        }
        self.conns.iter().all(Option::is_none)
    }

    /// Stop the pool (after it finishes every queued batch), join the
    /// replication feeders, and drop any leftover completions.
    fn teardown(&mut self) {
        self.jobs.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        for feeder in self.feeders.drain(..) {
            let _ = feeder.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::Transport;
    use kvstore::config::StoreConfig;
    use kvstore::store::KvStore;

    fn kv_dispatcher(shards: usize) -> Dispatcher {
        Dispatcher::kv(KvStore::open(StoreConfig::in_memory().shards(shards)).unwrap())
    }

    #[test]
    fn worker_pool_sizes_to_min_of_cores_and_shards() {
        let config = ServerConfig::default();
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(worker_count(&config, &kv_dispatcher(1)), 1);
        let wide = worker_count(&config, &kv_dispatcher(64));
        assert_eq!(wide, cores.clamp(1, 64));
        let explicit = ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        };
        assert_eq!(worker_count(&explicit, &kv_dispatcher(64)), 3);
    }

    #[test]
    fn job_queue_drains_fully_before_workers_exit() {
        let queue = JobQueue::new();
        for i in 0..5 {
            queue.push(Job {
                key: i + 1,
                frames: Vec::new(),
                session: Session::new(),
                enqueued_at: Instant::now(),
            });
        }
        queue.close();
        // close() does not discard queued work: all five jobs come out,
        // then the terminal None.
        let mut seen = 0;
        while queue.pop().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 5);
    }

    #[test]
    fn transport_default_is_reactor() {
        // GDPR_TRANSPORT is unset in unit tests unless CI injects it; the
        // parse table is what this pins down.
        assert_eq!(Transport::parse("reactor"), Some(Transport::Reactor));
        assert_eq!(Transport::parse("threads"), Some(Transport::Threads));
        assert_eq!(Transport::parse("bogus"), None);
        assert_eq!(Transport::default(), Transport::Reactor);
    }
}
