//! A live round trip against a real `gdpr-server` over TCP.
//!
//! With no arguments, the example starts its own server on an ephemeral
//! port, drives it, and shuts it down — a self-contained demo:
//!
//! ```text
//! cargo run --example tcp_client
//! ```
//!
//! Given an address, it connects to an already-running server instead
//! (started with e.g. `cargo run -p gdpr-server -- addr=127.0.0.1:16379`)
//! and sends `SHUTDOWN` at the end — which is how the CI smoke test uses
//! it:
//!
//! ```text
//! cargo run --example tcp_client -- 127.0.0.1:16379
//! ```

use std::error::Error;
use std::sync::Arc;

use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::GdprStore;
use gdpr_storage::gdpr_server::client::TcpRemoteClient;
use gdpr_storage::gdpr_server::dispatch::Dispatcher;
use gdpr_storage::gdpr_server::tcp::{ServerConfig, TcpServer};
use gdpr_storage::resp::command::GdprRequest;
use gdpr_storage::resp::Frame;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Find a server: the given address, or an in-process one.
    let (addr, local_server) = match std::env::args().nth(1) {
        Some(addr) => (addr, None),
        None => {
            let store = Arc::new(GdprStore::open_in_memory(CompliancePolicy::eventual())?);
            let server = TcpServer::bind(
                Dispatcher::gdpr(store),
                "127.0.0.1:0",
                ServerConfig::default(),
            )?;
            println!("started in-process gdpr-server on {}", server.local_addr());
            (server.local_addr().to_string(), Some(server))
        }
    };

    // 2. Connect and open the compliance session: install a grant for this
    //    actor/purpose (Article 25's "closed by default, opened
    //    explicitly") and authenticate the connection with it.
    let mut client = TcpRemoteClient::connect(addr.as_str())?;
    client.ping()?;
    client.gdpr(&GdprRequest::Grant {
        actor: "web-frontend".into(),
        purpose: "account-management".into(),
    })?;
    client.auth("web-frontend", "account-management")?;
    println!("authenticated as web-frontend/account-management");

    // 3. Store personal data with metadata in one round trip, then read it
    //    back through the compliance checks.
    client.gdpr(&GdprRequest::Put {
        key: "user:alice:email".into(),
        subject: "alice".into(),
        purposes: vec!["account-management".into()],
        value: b"alice@example.com".to_vec(),
        ttl_ms: Some(30 * 24 * 3600 * 1000),
    })?;
    let value = client.get("user:alice:email")?;
    println!(
        "stored and read back: {:?}",
        value.as_deref().map(String::from_utf8_lossy)
    );

    // 4. Pipelining: a burst of writes in one socket write, all replies in
    //    order.
    let frames: Vec<Frame> = (0..10)
        .map(|i| Frame::command(["SET", &format!("user:alice:item{i}"), "x"]))
        .collect();
    let replies = client.pipeline(&frames)?;
    println!(
        "pipelined {} writes -> {} replies",
        frames.len(),
        replies.len()
    );

    // 5. Subject rights over the wire: index lookup, export, erasure.
    let keys = client.keys_of_subject("alice")?;
    println!("metadata index lists {} keys for alice", keys.len());
    let export = client.export_subject("alice")?;
    println!("portability export is {} bytes of JSON", export.len());
    let erased = client.erase_subject("alice")?;
    println!("right to be forgotten erased {erased} keys");
    assert!(client.keys_of_subject("alice")?.is_empty());
    assert_eq!(client.get("user:alice:email")?, None);

    // 6. Stop the server gracefully.
    client.shutdown_server()?;
    println!("sent SHUTDOWN");
    if let Some(server) = local_server {
        server.wait_for_shutdown_request(std::time::Duration::from_millis(10));
        server.shutdown();
        println!("in-process server drained and stopped");
    }
    Ok(())
}
