//! Data-subject rights (GDPR Chapter 3).
//!
//! The four rights the paper identifies as storage-relevant:
//!
//! * **Article 15 — right of access**: [`GdprStore::right_of_access`]
//!   returns everything the store knows about a subject, including the
//!   purposes, recipients, retention and whether automated decision-making
//!   uses the data.
//! * **Article 17 — right to be forgotten**:
//!   [`GdprStore::right_to_erasure`] finds every key of the subject via the
//!   metadata index and erases data, metadata and (under strict compliance)
//!   the journal tombstones, synchronously.
//! * **Article 20 — right to data portability**:
//!   [`GdprStore::right_to_portability`] exports the subject's data as
//!   machine-readable JSON.
//! * **Article 21 — right to object**: [`GdprStore::right_to_object`]
//!   records an objection against a purpose on every key of the subject,
//!   after which reads under that purpose are refused.

use std::collections::BTreeMap;

use audit::record::{AuditRecord, Operation};
use kvstore::object::Bytes;

use crate::export::{bytes_to_json, Json};
use crate::metadata::PersonalMetadata;
use crate::store::{AccessContext, GdprStore};
use crate::Result;

/// Everything returned to a data subject exercising their right of access.
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectAccessReport {
    /// The data subject.
    pub subject: String,
    /// When the report was generated (Unix milliseconds).
    pub generated_at_ms: u64,
    /// One entry per stored key.
    pub items: Vec<SubjectDataItem>,
}

/// One stored value belonging to the subject.
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectDataItem {
    /// The key under which the value is stored.
    pub key: String,
    /// The stored value (string form) or the flattened record fields.
    pub value: Option<Bytes>,
    /// Record fields when the value is a multi-field record.
    pub fields: Option<BTreeMap<String, Bytes>>,
    /// The GDPR metadata attached to the value.
    pub metadata: PersonalMetadata,
}

/// Result of a right-to-be-forgotten request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErasureReport {
    /// The data subject whose data was erased.
    pub subject: String,
    /// Keys physically removed from the keyspace.
    pub erased_keys: Vec<String>,
    /// Number of journal records dropped by the accompanying compaction
    /// (0 when the policy defers scrubbing).
    pub journal_records_scrubbed: u64,
    /// Whether the erasure was completed synchronously (real-time
    /// compliance) or left residue for background clean-up.
    pub completed_in_real_time: bool,
}

/// Result of an objection request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectionReport {
    /// The data subject.
    pub subject: String,
    /// The purpose objected to.
    pub purpose: String,
    /// Keys whose metadata was updated.
    pub updated_keys: Vec<String>,
}

impl GdprStore {
    /// Every key currently owned by `subject` (from the metadata index,
    /// falling back to a scan when indexing is disabled — the "partial
    /// compliance" path).
    ///
    /// # Errors
    ///
    /// Returns storage or corruption errors.
    pub fn keys_of_subject(&self, subject: &str) -> Result<Vec<String>> {
        let _timed = self.rights_timing.keysof.start_timer();
        if self.policy.maintain_indexes {
            return Ok(self.index.keys_of_subject(subject));
        }
        // Fallback: full scan over the metadata shadow records.
        let mut keys = Vec::new();
        for meta_key in self.kv.keys(&format!("{}*", crate::store::META_PREFIX))? {
            if let Some(bytes) = self.kv.get(&meta_key)? {
                if let Some(meta) = PersonalMetadata::decode(&bytes) {
                    if meta.subject == subject {
                        keys.push(
                            meta_key
                                .trim_start_matches(crate::store::META_PREFIX)
                                .to_string(),
                        );
                    }
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    /// Article 15: produce the full access report for a subject.
    ///
    /// # Errors
    ///
    /// Returns storage or corruption errors.
    pub fn right_of_access(
        &self,
        ctx: &AccessContext,
        subject: &str,
    ) -> Result<SubjectAccessReport> {
        let now = self.now_ms();
        let mut items = Vec::new();
        for key in self.keys_of_subject(subject)? {
            let Some(metadata) = self.load_metadata(&key)? else {
                continue;
            };
            // Values can be plain strings or multi-field records.
            let fields = self.kv.hgetall(&key).ok().flatten();
            let value = if fields.is_some() {
                None
            } else {
                self.kv.get(&key)?
            };
            items.push(SubjectDataItem {
                key,
                value,
                fields,
                metadata,
            });
        }
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::RightsRequest)
                .subject(subject)
                .purpose(&ctx.purpose)
                .detail(&format!("art.15 access request: {} items", items.len())),
        );
        self.flush_audit_if_strict()?;
        Ok(SubjectAccessReport {
            subject: subject.to_string(),
            generated_at_ms: now,
            items,
        })
    }

    /// Article 17: erase every key belonging to `subject`.
    ///
    /// Under a strict policy the accompanying journal compaction runs
    /// synchronously so no tombstone of the personal data survives in the
    /// AOF (the §4.3 concern); under an eventual policy the compaction is
    /// left to the next scheduled rewrite.
    ///
    /// # Errors
    ///
    /// Returns storage or audit errors.
    pub fn right_to_erasure(&self, ctx: &AccessContext, subject: &str) -> Result<ErasureReport> {
        let _timed = self.rights_timing.erase.start_timer();
        let now = self.now_ms();
        let keys = self.keys_of_subject(subject)?;
        let mut erased = Vec::with_capacity(keys.len());
        for key in keys {
            // Per-key mutation bracket: serializes against a concurrent put
            // of the same key, so erased data cannot be resurrected by an
            // in-flight write (value, shadow record and index posting go
            // together).
            let existed = self
                .index
                .with_key_segment(&key, |segment| -> Result<bool> {
                    let existed = self.kv.delete(&key)?;
                    self.kv.delete(&Self::meta_key(&key))?;
                    if self.policy.maintain_indexes {
                        segment.remove(&key);
                    }
                    // Erasure must also purge the hot tier before the
                    // bracket releases: no read after this point may be
                    // served from a cached copy of the erased value.
                    self.hot.invalidate(&key);
                    Ok(existed)
                })?;
            if existed {
                erased.push(key);
            }
        }

        let journal_records_scrubbed = if self.policy.scrub_aof_on_erasure && !erased.is_empty() {
            self.kv.rewrite_aof()?
        } else {
            0
        };

        self.stats.add_erased_by_request(erased.len() as u64);
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::RightsRequest)
                .subject(subject)
                .purpose(&ctx.purpose)
                .detail(&format!(
                    "art.17 erasure: {} keys erased, {} journal records scrubbed",
                    erased.len(),
                    journal_records_scrubbed
                )),
        );
        self.flush_audit_if_strict()?;

        Ok(ErasureReport {
            subject: subject.to_string(),
            erased_keys: erased,
            journal_records_scrubbed,
            completed_in_real_time: self.policy.erasure_response.is_real_time()
                && self.policy.scrub_aof_on_erasure,
        })
    }

    /// Article 20: export all of a subject's data as machine-readable JSON.
    ///
    /// # Errors
    ///
    /// Returns storage or corruption errors.
    pub fn right_to_portability(&self, ctx: &AccessContext, subject: &str) -> Result<String> {
        let _timed = self.rights_timing.export.start_timer();
        let report = self.right_of_access(ctx, subject)?;
        let items: Vec<Json> = report
            .items
            .iter()
            .map(|item| {
                let mut object = Json::object()
                    .field("key", Json::string(&item.key))
                    .field("subject", Json::string(&item.metadata.subject))
                    .field(
                        "purposes",
                        Json::Array(item.metadata.purposes.iter().map(Json::string).collect()),
                    )
                    .field(
                        "recipients",
                        Json::Array(item.metadata.recipients.iter().map(Json::string).collect()),
                    )
                    .field("origin", Json::string(&item.metadata.origin))
                    .field("location", Json::string(item.metadata.location.as_str()))
                    .field(
                        "expires_at_ms",
                        item.metadata
                            .expires_at_ms
                            .map_or(Json::Null, Json::integer),
                    )
                    .field(
                        "automated_decisions",
                        Json::Bool(item.metadata.automated_decisions),
                    );
                if let Some(value) = &item.value {
                    object = object.field("value", bytes_to_json(value));
                }
                if let Some(fields) = &item.fields {
                    object = object.field(
                        "fields",
                        Json::Object(
                            fields
                                .iter()
                                .map(|(f, v)| (f.clone(), bytes_to_json(v)))
                                .collect(),
                        ),
                    );
                }
                object.build()
            })
            .collect();

        let export = Json::object()
            .field("format", Json::string("gdpr-portability-export/v1"))
            .field("subject", Json::string(subject))
            .field("generated_at_ms", Json::integer(report.generated_at_ms))
            .field("item_count", Json::integer(items.len() as u64))
            .field("items", Json::Array(items))
            .build();
        Ok(export.render())
    }

    /// Article 21: record an objection against `purpose` on every key of
    /// `subject`. Subsequent reads under that purpose are refused.
    ///
    /// # Errors
    ///
    /// Returns storage or corruption errors.
    pub fn right_to_object(
        &self,
        ctx: &AccessContext,
        subject: &str,
        purpose: &str,
    ) -> Result<ObjectionReport> {
        let _timed = self.rights_timing.object.start_timer();
        let now = self.now_ms();
        let mut updated = Vec::new();
        for key in self.keys_of_subject(subject)? {
            // Bracketed read-modify-write of the metadata shadow, so a
            // racing put/erasure of the same key cannot interleave with
            // the objection.
            let objected = self
                .index
                .with_key_segment(&key, |segment| -> Result<bool> {
                    let Some(mut meta) = self.load_metadata(&key)? else {
                        return Ok(false);
                    };
                    meta.object_to(purpose);
                    self.store_metadata(&key, &meta)?;
                    if self.policy.maintain_indexes {
                        segment.remove_purpose(&key, purpose);
                    }
                    // The cached metadata predates the objection; drop it
                    // so the next read re-admits the objecting copy.
                    self.hot.invalidate(&key);
                    Ok(true)
                })?;
            if objected {
                updated.push(key);
            }
        }
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::RightsRequest)
                .subject(subject)
                .purpose(purpose)
                .detail(&format!(
                    "art.21 objection recorded on {} keys",
                    updated.len()
                )),
        );
        self.flush_audit_if_strict()?;
        Ok(ObjectionReport {
            subject: subject.to_string(),
            purpose: purpose.to_string(),
            updated_keys: updated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::Grant;
    use crate::metadata::Region;
    use crate::policy::CompliancePolicy;
    use crate::GdprError;

    fn ctx() -> AccessContext {
        AccessContext::new("app", "billing")
    }

    fn store_with_data(policy: CompliancePolicy) -> GdprStore {
        let store = GdprStore::open_in_memory(policy).unwrap();
        store.grant(Grant::new("app", "billing"));
        store.grant(Grant::new("app", "analytics"));
        let alice = PersonalMetadata::new("alice")
            .with_purpose("billing")
            .with_purpose("analytics")
            .with_recipient("payments-inc")
            .with_location(Region::Eu);
        let bob = PersonalMetadata::new("bob")
            .with_purpose("billing")
            .with_location(Region::Eu);
        store
            .put(
                &ctx(),
                "user:alice:email",
                b"alice@example.com".to_vec(),
                alice.clone(),
            )
            .unwrap();
        store
            .put(&ctx(), "user:alice:address", b"1 Main St".to_vec(), alice)
            .unwrap();
        store
            .put(&ctx(), "user:bob:email", b"bob@example.com".to_vec(), bob)
            .unwrap();
        store
    }

    #[test]
    fn right_of_access_returns_all_subject_items() {
        let store = store_with_data(CompliancePolicy::strict());
        let report = store.right_of_access(&ctx(), "alice").unwrap();
        assert_eq!(report.subject, "alice");
        assert_eq!(report.items.len(), 2);
        assert!(report.items.iter().all(|i| i.metadata.subject == "alice"));
        assert!(report
            .items
            .iter()
            .any(|i| i.value == Some(b"alice@example.com".to_vec())));
        // Bob's report only sees bob's data.
        assert_eq!(store.right_of_access(&ctx(), "bob").unwrap().items.len(), 1);
        // Unknown subject: empty report, not an error.
        assert!(store
            .right_of_access(&ctx(), "carol")
            .unwrap()
            .items
            .is_empty());
    }

    #[test]
    fn right_to_erasure_removes_data_metadata_and_index_entries() {
        let store = store_with_data(CompliancePolicy::strict());
        let report = store.right_to_erasure(&ctx(), "alice").unwrap();
        assert_eq!(report.erased_keys.len(), 2);
        assert!(report.completed_in_real_time);
        assert!(
            report.journal_records_scrubbed > 0,
            "strict policy scrubs the journal"
        );
        assert_eq!(store.get(&ctx(), "user:alice:email").unwrap(), None);
        assert!(store.keys_of_subject("alice").unwrap().is_empty());
        // Bob is untouched.
        assert_eq!(
            store.get(&ctx(), "user:bob:email").unwrap(),
            Some(b"bob@example.com".to_vec())
        );
        assert_eq!(store.stats().erased_by_request, 2);
        // Erasing again is a no-op.
        assert!(store
            .right_to_erasure(&ctx(), "alice")
            .unwrap()
            .erased_keys
            .is_empty());
    }

    #[test]
    fn erasure_under_eventual_policy_defers_journal_scrub() {
        let store = store_with_data(CompliancePolicy::eventual());
        let report = store.right_to_erasure(&ctx(), "alice").unwrap();
        assert_eq!(report.erased_keys.len(), 2);
        assert!(!report.completed_in_real_time);
        assert_eq!(report.journal_records_scrubbed, 0);
    }

    #[test]
    fn portability_export_is_valid_jsonish_and_complete() {
        let store = store_with_data(CompliancePolicy::strict());
        let json = store.right_to_portability(&ctx(), "alice").unwrap();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"subject\":\"alice\""));
        assert!(json.contains("alice@example.com"));
        assert!(json.contains("payments-inc"));
        assert!(json.contains("\"item_count\":2"));
        assert!(
            !json.contains("bob@example.com"),
            "other subjects' data must not leak"
        );
    }

    #[test]
    fn objection_blocks_the_purpose_going_forward() {
        let store = store_with_data(CompliancePolicy::strict());
        let analytics = AccessContext::new("app", "analytics");
        // Works before the objection.
        assert!(store.get(&analytics, "user:alice:email").is_ok());
        let report = store.right_to_object(&ctx(), "alice", "analytics").unwrap();
        assert_eq!(report.updated_keys.len(), 2);
        // Blocked afterwards.
        let err = store.get(&analytics, "user:alice:email").unwrap_err();
        assert!(matches!(err, GdprError::PurposeViolation { .. }));
        // Billing still works.
        assert!(store.get(&ctx(), "user:alice:email").is_ok());
        // Purpose index no longer lists alice's keys under analytics.
        assert!(!store
            .index
            .keys_for_purpose("analytics")
            .iter()
            .any(|k| k.contains("alice")));
    }

    #[test]
    fn rights_requests_are_audited() {
        let store = store_with_data(CompliancePolicy::strict());
        store.right_of_access(&ctx(), "alice").unwrap();
        store.right_to_erasure(&ctx(), "alice").unwrap();
        let trail = store.audit_trail().unwrap().join("\n");
        assert!(trail.contains("art.15"));
        assert!(trail.contains("art.17"));
    }

    #[test]
    fn subject_lookup_without_index_falls_back_to_scan() {
        // Eventual policy keeps indexes; build a policy without them.
        let mut policy = CompliancePolicy::eventual();
        policy.maintain_indexes = false;
        policy.enforce_access_control = false;
        let store = GdprStore::open_in_memory(policy).unwrap();
        let meta = PersonalMetadata::new("dora").with_purpose("billing");
        store
            .put(&ctx(), "user:dora:email", b"d@e.f".to_vec(), meta)
            .unwrap();
        assert_eq!(
            store.keys_of_subject("dora").unwrap(),
            vec!["user:dora:email"]
        );
        let report = store.right_of_access(&ctx(), "dora").unwrap();
        assert_eq!(report.items.len(), 1);
    }
}
