//! Reproduces the **§4.2 encryption numbers**: the cost of encrypting data
//! at rest (LUKS simulation — every byte persisted is sealed) and in
//! transit (TLS simulation — every wire frame is sealed and the effective
//! bandwidth collapses from 44 Gb/s to 4.9 Gb/s). The paper reports the
//! encrypted configuration at roughly a third of baseline throughput,
//! dominated by the TLS proxies' bandwidth loss.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin encryption_sweep [records=N] [ops=N] [realistic=1]
//! ```

use bench::adapters::RemoteAdapter;
use bench::{arg_value, cleanup_scratch, scratch_dir};
use kvstore::config::StoreConfig;
use kvstore::store::KvStore;
use netsim::client::RemoteClient;
use netsim::link::LinkConfig;
use netsim::server::RespKvServer;
use ycsb::client::Driver;
use ycsb::workload::WorkloadSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records = arg_value(&args, "records").unwrap_or(5_000);
    let ops = arg_value(&args, "ops").unwrap_or(10_000);
    let realistic = arg_value(&args, "realistic").unwrap_or(0) == 1;
    let dir = scratch_dir("encryption-sweep");

    let link = |cfg: LinkConfig| if realistic { cfg.imposing_delay() } else { cfg };

    println!("§4.2 reproduction — encryption at rest (LUKS sim) and in transit (TLS sim), YCSB workload A\n");
    println!(
        "{:<26} {:>14} {:>12}",
        "configuration", "throughput", "vs baseline"
    );

    let mut baseline = 0.0f64;
    type Builder = Box<dyn Fn() -> RemoteAdapter>;
    let configs: Vec<(&str, Builder)> = vec![
        (
            "plaintext",
            Box::new({
                let link = link(LinkConfig::plain_44gbps());
                move || {
                    let store = KvStore::open(StoreConfig::in_memory()).unwrap();
                    RemoteAdapter::new(RemoteClient::connect_plain(RespKvServer::new(store), link))
                }
            }),
        ),
        (
            "luks-at-rest",
            Box::new({
                let dir = dir.clone();
                let link = link(LinkConfig::plain_44gbps());
                move || {
                    let store = KvStore::open(
                        StoreConfig::with_aof(dir.join("luks.aof")).encrypted(b"sweep-pass"),
                    )
                    .unwrap();
                    RemoteAdapter::new(RemoteClient::connect_plain(RespKvServer::new(store), link))
                }
            }),
        ),
        (
            "tls-in-transit",
            Box::new({
                let link = link(LinkConfig::tls_proxied_4_9gbps());
                move || {
                    let store = KvStore::open(StoreConfig::in_memory()).unwrap();
                    RemoteAdapter::new(RemoteClient::connect_secure(
                        RespKvServer::new(store),
                        link,
                        b"sweep-secret",
                    ))
                }
            }),
        ),
        (
            "luks+tls",
            Box::new({
                let dir = dir.clone();
                let link = link(LinkConfig::tls_proxied_4_9gbps());
                move || {
                    let store = KvStore::open(
                        StoreConfig::with_aof(dir.join("both.aof")).encrypted(b"sweep-pass"),
                    )
                    .unwrap();
                    RemoteAdapter::new(RemoteClient::connect_secure(
                        RespKvServer::new(store),
                        link,
                        b"sweep-secret",
                    ))
                }
            }),
        ),
    ];

    for (label, build) in configs {
        let mut adapter = build();
        let mut driver = Driver::new(WorkloadSpec::workload_a(records, ops), 42);
        driver.run_load(&mut adapter).expect("load");
        let report = driver.run_transactions(&mut adapter).expect("run");
        let throughput = report.throughput();
        if baseline == 0.0 {
            baseline = throughput;
        }
        let (req, rep) = adapter.client().link_stats();
        println!(
            "{:<26} {:>10.0} op/s {:>11.1}%   (wire: {:.1} MB requests, {:.1} MB replies)",
            label,
            throughput,
            throughput / baseline * 100.0,
            req.payload_bytes as f64 / 1e6,
            rep.payload_bytes as f64 / 1e6,
        );
    }

    println!("\npaper reference point: LUKS+TLS ≈30% of baseline, dominated by the TLS proxies (44 → 4.9 Gb/s)");
    cleanup_scratch(&dir);
}
