//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build container has no registry access, so this shim provides the
//! exact API surface the workspace consumes: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits, a deterministic [`rngs::StdRng`] (xoshiro256++
//! seeded via splitmix64), and [`thread_rng`]. It is *not* cryptographically
//! secure; the only consumer needing unpredictability-adjacent bytes is
//! nonce generation, which needs uniqueness, not secrecy.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words and bytes.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A distribution-like bound for [`Rng::gen`]: types that can be sampled
/// uniformly from an RNG (the `Standard` distribution in real rand).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Construction from ambient entropy (time + allocation addresses).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e37_79b9_7f4a_7c15);
    let local = 0u8;
    let addr = std::ptr::addr_of!(local) as usize as u64;
    nanos ^ addr.rotate_left(32) ^ (std::process::id() as u64).rotate_left(17)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    /// Handle to a thread-local [`StdRng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng;

    thread_local! {
        static THREAD_RNG: std::cell::RefCell<StdRng> =
            std::cell::RefCell::new(StdRng::from_entropy());
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            THREAD_RNG.with(|rng| rng.borrow_mut().next_u64())
        }
    }
}

/// A handle to the thread-local RNG.
#[must_use]
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&y));
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
