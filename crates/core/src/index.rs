//! Secondary metadata indexes (Articles 15, 17, 20, 21).
//!
//! The data-subject rights all start with the same query: *find every key
//! that belongs to this person* (or: that is processed under this purpose).
//! Stock key-value stores can only answer that with a full scan; the paper
//! lists "Metadata indexing" as a required storage feature and "efficient
//! metadata indexing" as an open research challenge (§5.1). The compliance
//! layer maintains two inverted indexes — subject → keys and purpose →
//! keys — updated on every write and erase.
//!
//! [`ShardedMetadataIndex`] splits the postings into per-shard segments
//! aligned with the engine's key routing, so per-key maintenance (the hot
//! path: every `put`/`delete`) only locks the owning segment, while
//! cross-shard queries (`right_to_erasure`, `right_of_access`, …) merge
//! over all segments.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use kvstore::shard::{hash_key, ShardRouter};
use parking_lot::Mutex;

/// Number of independently locked stripes in a [`SubjectPresence`] map.
/// Presence updates ride inside the per-key mutation bracket, so the
/// stripe lock is only ever held for a hash-map poke; 16 stripes keep
/// cross-shard writers from serializing on one mutex.
const PRESENCE_STRIPES: usize = 16;

/// Which index segments currently hold postings for which subjects.
///
/// `keys_of_subject` historically locked and searched *every* segment,
/// which made the per-subject fan-out scale with the shard count even
/// though a subject's keys usually live in a few segments (one, in the
/// worst measured case). This map answers "which segments can possibly
/// hold this subject?" without touching any segment lock.
///
/// The map is keyed by the seeded FNV hash of the subject (subjects ≪
/// 2^64) and stores a per-shard count of *distinct subjects with that
/// hash* present in the shard. Counting distinct subjects — rather than
/// keeping one bit — keeps the map exact under hash collisions: a shard's
/// entry only drops to zero when every colliding subject has left, so a
/// set bit can over-approximate but a cleared bit is always truthful.
/// Maintenance happens inside the existing per-key mutation brackets
/// ([`ShardedMetadataIndex::with_key_segment`]): the bracket that removes
/// a subject's last posting from a segment is the one that decrements the
/// count, so erasure clears presence exactly when the last posting dies.
#[derive(Debug)]
pub struct SubjectPresence {
    stripes: Vec<Mutex<HashMap<u64, Vec<u32>>>>,
    seed: u64,
}

impl SubjectPresence {
    fn new(seed: u64) -> Self {
        SubjectPresence {
            stripes: (0..PRESENCE_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            seed,
        }
    }

    fn stripe_of(&self, hash: u64) -> usize {
        (hash >> 32) as usize % PRESENCE_STRIPES
    }

    /// A subject gained its first posting in `shard`.
    fn note_added(&self, subject: &str, shard: usize, shards: usize) {
        let hash = hash_key(self.seed, subject);
        let mut stripe = self.stripes[self.stripe_of(hash)].lock();
        let counts = stripe.entry(hash).or_insert_with(|| vec![0; shards]);
        if counts.len() < shards {
            counts.resize(shards, 0);
        }
        counts[shard] += 1;
    }

    /// A subject lost its last posting in `shard`.
    fn note_removed(&self, subject: &str, shard: usize) {
        let hash = hash_key(self.seed, subject);
        let mut stripe = self.stripes[self.stripe_of(hash)].lock();
        if let Some(counts) = stripe.get_mut(&hash) {
            if let Some(count) = counts.get_mut(shard) {
                *count = count.saturating_sub(1);
            }
            if counts.iter().all(|&c| c == 0) {
                stripe.remove(&hash);
            }
        }
    }

    /// The shards that may hold postings for `subject`, ascending. Exact
    /// up to subject-hash collisions (a collision can add shards, never
    /// hide one).
    #[must_use]
    pub fn shards_with(&self, subject: &str) -> Vec<usize> {
        let hash = hash_key(self.seed, subject);
        let stripe = self.stripes[self.stripe_of(hash)].lock();
        match stripe.get(&hash) {
            Some(counts) => counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, _)| i)
                .collect(),
            None => Vec::new(),
        }
    }

    /// The presence bitmap for `subject`: bit `shard % 64` is set when the
    /// shard may hold postings for the subject.
    #[must_use]
    pub fn shard_mask(&self, subject: &str) -> u64 {
        self.shards_with(subject)
            .into_iter()
            .fold(0u64, |mask, shard| mask | (1u64 << (shard % 64)))
    }
}

/// In-memory inverted indexes over the GDPR metadata.
///
/// The index is rebuildable from the metadata shadow records (see
/// [`crate::store::GdprStore::rebuild_index`]), so it does not need its own
/// persistence.
#[derive(Debug, Clone, Default)]
pub struct MetadataIndex {
    by_subject: BTreeMap<String, BTreeSet<String>>,
    by_purpose: BTreeMap<String, BTreeSet<String>>,
    /// Number of index mutations performed (used by the ablation bench).
    updates: u64,
    /// Set when this index is a segment of a [`ShardedMetadataIndex`]:
    /// `(shard id, total shards, shared presence map)`. Mutations then
    /// keep the presence map in sync — the caller already holds this
    /// segment's lock, so subject arrival/departure here is exactly the
    /// first/last posting transition.
    presence: Option<(usize, usize, Arc<SubjectPresence>)>,
}

impl MetadataIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Index `key` as belonging to `subject` with the given purposes.
    pub fn insert(&mut self, key: &str, subject: &str, purposes: impl IntoIterator<Item = String>) {
        let subject_is_new = !self.by_subject.contains_key(subject);
        self.by_subject
            .entry(subject.to_string())
            .or_default()
            .insert(key.to_string());
        for purpose in purposes {
            self.by_purpose
                .entry(purpose)
                .or_default()
                .insert(key.to_string());
        }
        self.updates += 1;
        if subject_is_new {
            if let Some((shard, shards, presence)) = &self.presence {
                presence.note_added(subject, *shard, *shards);
            }
        }
    }

    /// Remove `key` from every posting list.
    pub fn remove(&mut self, key: &str) {
        let mut departed: Vec<String> = Vec::new();
        self.by_subject.retain(|subject, keys| {
            if keys.remove(key) && keys.is_empty() {
                departed.push(subject.clone());
            }
            !keys.is_empty()
        });
        self.by_purpose.retain(|_, keys| {
            keys.remove(key);
            !keys.is_empty()
        });
        self.updates += 1;
        if let Some((shard, _, presence)) = &self.presence {
            for subject in &departed {
                presence.note_removed(subject, *shard);
            }
        }
    }

    /// Remove `key` from one purpose's posting list (used when an objection
    /// is recorded against that purpose).
    pub fn remove_purpose(&mut self, key: &str, purpose: &str) {
        if let Some(keys) = self.by_purpose.get_mut(purpose) {
            keys.remove(key);
            if keys.is_empty() {
                self.by_purpose.remove(purpose);
            }
        }
        self.updates += 1;
    }

    /// Every key owned by `subject`, in lexicographic order.
    #[must_use]
    pub fn keys_of_subject(&self, subject: &str) -> Vec<String> {
        self.by_subject
            .get(subject)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Every key processable under `purpose`, in lexicographic order.
    #[must_use]
    pub fn keys_for_purpose(&self, purpose: &str) -> Vec<String> {
        self.by_purpose
            .get(purpose)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// All data subjects currently present in the index.
    #[must_use]
    pub fn subjects(&self) -> Vec<String> {
        self.by_subject.keys().cloned().collect()
    }

    /// All purposes currently present in the index.
    #[must_use]
    pub fn purposes(&self) -> Vec<String> {
        self.by_purpose.keys().cloned().collect()
    }

    /// Number of keys indexed for `subject`.
    #[must_use]
    pub fn subject_key_count(&self, subject: &str) -> usize {
        self.by_subject.get(subject).map_or(0, BTreeSet::len)
    }

    /// Total number of index mutations performed.
    #[must_use]
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Clear the index (before a rebuild).
    pub fn clear(&mut self) {
        if let Some((shard, _, presence)) = &self.presence {
            for subject in self.by_subject.keys() {
                presence.note_removed(subject, *shard);
            }
        }
        self.by_subject.clear();
        self.by_purpose.clear();
    }
}

/// Per-shard segments of the metadata index, routed by the same key hash
/// the engine uses, so an operation that already holds the engine shard
/// only contends on its own index segment.
#[derive(Debug)]
pub struct ShardedMetadataIndex {
    segments: Vec<Mutex<MetadataIndex>>,
    router: ShardRouter,
    presence: Arc<SubjectPresence>,
}

impl ShardedMetadataIndex {
    /// An empty index aligned with `router`'s shard layout.
    #[must_use]
    pub fn new(router: ShardRouter) -> Self {
        let presence = Arc::new(SubjectPresence::new(router.seed()));
        let shards = router.shard_count();
        let segments = (0..shards)
            .map(|shard| {
                let mut segment = MetadataIndex::new();
                segment.presence = Some((shard, shards, Arc::clone(&presence)));
                Mutex::new(segment)
            })
            .collect();
        ShardedMetadataIndex {
            segments,
            router,
            presence,
        }
    }

    /// Number of segments (= engine shards).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segment (= engine shard) owning `key`.
    #[must_use]
    pub fn shard_of(&self, key: &str) -> usize {
        self.router.shard_of(key)
    }

    /// The per-subject shard-presence map (which segments may hold
    /// postings for a subject).
    #[must_use]
    pub fn presence(&self) -> &SubjectPresence {
        &self.presence
    }

    /// Run `f` while holding the lock of segment `shard`.
    ///
    /// This is the batched sibling of [`Self::with_key_segment`]: a caller
    /// that has already grouped keys by [`Self::shard_of`] can read or
    /// mutate every key of one segment under a single lock acquisition.
    /// The same bracket rules apply — same segment → engine lock order,
    /// and the closure must use the provided segment, not re-enter `self`.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn with_segment<R>(&self, shard: usize, f: impl FnOnce(&mut MetadataIndex) -> R) -> R {
        let mut segment = self.segments[shard].lock();
        f(&mut segment)
    }

    /// Run `f` while holding the lock of `key`'s segment.
    ///
    /// This is the per-key **mutation bracket** of the compliance layer:
    /// the store updates engine value, metadata shadow and index posting
    /// for one key inside this critical section, so a concurrent erasure
    /// and a concurrent put of the same key serialize against each other
    /// (no resurrection of erased data, no index postings pointing at
    /// vanished keys) while keys on other segments proceed in parallel.
    /// The closure must use the provided segment, not re-enter `self`.
    pub fn with_key_segment<R>(&self, key: &str, f: impl FnOnce(&mut MetadataIndex) -> R) -> R {
        let mut segment = self.segments[self.router.shard_of(key)].lock();
        f(&mut segment)
    }

    /// Index `key` as belonging to `subject` with the given purposes
    /// (locks only the owning segment).
    pub fn insert(&self, key: &str, subject: &str, purposes: impl IntoIterator<Item = String>) {
        self.segments[self.router.shard_of(key)]
            .lock()
            .insert(key, subject, purposes);
    }

    /// Remove `key` from every posting list of its segment.
    pub fn remove(&self, key: &str) {
        self.segments[self.router.shard_of(key)].lock().remove(key);
    }

    /// Remove `key` from one purpose's posting list.
    pub fn remove_purpose(&self, key: &str, purpose: &str) {
        self.segments[self.router.shard_of(key)]
            .lock()
            .remove_purpose(key, purpose);
    }

    /// Every key owned by `subject`, merged across segments in
    /// lexicographic order.
    ///
    /// Only the segments the presence map lists for the subject are
    /// locked, so the fan-out cost tracks where the subject's data
    /// actually lives instead of the shard count.
    #[must_use]
    pub fn keys_of_subject(&self, subject: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .presence
            .shards_with(subject)
            .into_iter()
            .flat_map(|shard| self.segments[shard].lock().keys_of_subject(subject))
            .collect();
        keys.sort();
        keys
    }

    /// Every key processable under `purpose`, merged across segments in
    /// lexicographic order.
    #[must_use]
    pub fn keys_for_purpose(&self, purpose: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .segments
            .iter()
            .flat_map(|s| s.lock().keys_for_purpose(purpose))
            .collect();
        keys.sort();
        keys
    }

    /// All data subjects present in any segment, deduplicated and sorted.
    #[must_use]
    pub fn subjects(&self) -> Vec<String> {
        let set: BTreeSet<String> = self
            .segments
            .iter()
            .flat_map(|s| s.lock().subjects())
            .collect();
        set.into_iter().collect()
    }

    /// All purposes present in any segment, deduplicated and sorted.
    #[must_use]
    pub fn purposes(&self) -> Vec<String> {
        let set: BTreeSet<String> = self
            .segments
            .iter()
            .flat_map(|s| s.lock().purposes())
            .collect();
        set.into_iter().collect()
    }

    /// Number of keys indexed for `subject` across all segments (pruned
    /// by the presence map, like [`Self::keys_of_subject`]).
    #[must_use]
    pub fn subject_key_count(&self, subject: &str) -> usize {
        self.presence
            .shards_with(subject)
            .into_iter()
            .map(|shard| self.segments[shard].lock().subject_key_count(subject))
            .sum()
    }

    /// Total number of index mutations performed across all segments.
    #[must_use]
    pub fn update_count(&self) -> u64 {
        self.segments.iter().map(|s| s.lock().update_count()).sum()
    }

    /// Clear every segment (before a rebuild).
    pub fn clear(&self) {
        for segment in &self.segments {
            segment.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> MetadataIndex {
        let mut idx = MetadataIndex::new();
        idx.insert(
            "user:alice:email",
            "alice",
            ["billing".to_string(), "analytics".to_string()],
        );
        idx.insert("user:alice:address", "alice", ["billing".to_string()]);
        idx.insert("user:bob:email", "bob", ["analytics".to_string()]);
        idx
    }

    #[test]
    fn subject_lookup() {
        let idx = sample_index();
        assert_eq!(
            idx.keys_of_subject("alice"),
            vec!["user:alice:address", "user:alice:email"]
        );
        assert_eq!(idx.keys_of_subject("bob"), vec!["user:bob:email"]);
        assert!(idx.keys_of_subject("carol").is_empty());
        assert_eq!(idx.subject_key_count("alice"), 2);
        assert_eq!(idx.subjects(), vec!["alice", "bob"]);
    }

    #[test]
    fn purpose_lookup() {
        let idx = sample_index();
        assert_eq!(idx.keys_for_purpose("billing").len(), 2);
        assert_eq!(idx.keys_for_purpose("analytics").len(), 2);
        assert!(idx.keys_for_purpose("marketing").is_empty());
        assert_eq!(idx.purposes(), vec!["analytics", "billing"]);
    }

    #[test]
    fn remove_key_everywhere() {
        let mut idx = sample_index();
        idx.remove("user:alice:email");
        assert_eq!(idx.keys_of_subject("alice"), vec!["user:alice:address"]);
        assert_eq!(idx.keys_for_purpose("analytics"), vec!["user:bob:email"]);
        // Removing the last key of a subject drops the subject entirely.
        idx.remove("user:bob:email");
        assert!(idx.subjects().iter().all(|s| s != "bob"));
    }

    #[test]
    fn remove_purpose_only_affects_that_posting_list() {
        let mut idx = sample_index();
        idx.remove_purpose("user:alice:email", "analytics");
        assert_eq!(idx.keys_for_purpose("analytics"), vec!["user:bob:email"]);
        // Subject index untouched.
        assert_eq!(idx.subject_key_count("alice"), 2);
        // Billing still lists the key.
        assert!(idx
            .keys_for_purpose("billing")
            .contains(&"user:alice:email".to_string()));
    }

    #[test]
    fn clear_and_update_counter() {
        let mut idx = sample_index();
        assert_eq!(idx.update_count(), 3);
        idx.clear();
        assert!(idx.subjects().is_empty());
        assert!(idx.purposes().is_empty());
    }

    #[test]
    fn reinserting_same_key_is_idempotent_in_content() {
        let mut idx = MetadataIndex::new();
        idx.insert("k", "alice", ["p".to_string()]);
        idx.insert("k", "alice", ["p".to_string()]);
        assert_eq!(idx.keys_of_subject("alice"), vec!["k"]);
        assert_eq!(idx.keys_for_purpose("p"), vec!["k"]);
    }

    #[test]
    fn sharded_index_merges_cross_segment_queries() {
        let idx = ShardedMetadataIndex::new(ShardRouter::new(4, 7));
        assert_eq!(idx.segment_count(), 4);
        for i in 0..32 {
            idx.insert(
                &format!("user:alice:{i:02}"),
                "alice",
                ["billing".to_string()],
            );
        }
        idx.insert("user:bob:0", "bob", ["analytics".to_string()]);
        let keys = idx.keys_of_subject("alice");
        assert_eq!(keys.len(), 32);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "merged query must stay ordered");
        assert_eq!(idx.subject_key_count("alice"), 32);
        assert_eq!(idx.subjects(), vec!["alice", "bob"]);
        assert_eq!(idx.purposes(), vec!["analytics", "billing"]);
        assert_eq!(idx.keys_for_purpose("billing").len(), 32);
        assert!(idx.update_count() >= 33);

        idx.remove("user:alice:00");
        assert_eq!(idx.subject_key_count("alice"), 31);
        idx.remove_purpose("user:bob:0", "analytics");
        assert!(idx.keys_for_purpose("analytics").is_empty());
        idx.clear();
        assert!(idx.subjects().is_empty());
    }

    #[test]
    fn presence_map_tracks_arrival_and_departure() {
        let idx = ShardedMetadataIndex::new(ShardRouter::new(4, 7));
        assert!(idx.presence().shards_with("alice").is_empty());
        assert_eq!(idx.presence().shard_mask("alice"), 0);
        for i in 0..16 {
            idx.insert(&format!("a:{i}"), "alice", ["p".to_string()]);
        }
        let shards = idx.presence().shards_with("alice");
        assert!(!shards.is_empty());
        // Presence lists exactly the segments that hold postings.
        for shard in 0..idx.segment_count() {
            let holds = idx.with_segment(shard, |s| !s.keys_of_subject("alice").is_empty());
            assert_eq!(shards.contains(&shard), holds, "shard {shard}");
        }
        // Erasing all keys clears every bit.
        for i in 0..16 {
            idx.remove(&format!("a:{i}"));
        }
        assert!(idx.presence().shards_with("alice").is_empty());
        assert!(idx.keys_of_subject("alice").is_empty());
    }

    #[test]
    fn presence_map_survives_clear_and_reinsert() {
        let idx = ShardedMetadataIndex::new(ShardRouter::new(4, 7));
        idx.insert("k1", "alice", ["p".to_string()]);
        idx.insert("k2", "bob", ["p".to_string()]);
        idx.clear();
        assert!(idx.presence().shards_with("alice").is_empty());
        assert!(idx.presence().shards_with("bob").is_empty());
        idx.insert("k1", "alice", ["p".to_string()]);
        assert_eq!(idx.keys_of_subject("alice"), vec!["k1"]);
    }

    #[test]
    fn presence_counts_stay_exact_for_colliding_subjects() {
        // Two different subjects hashing to the same stripe entry must not
        // clear each other's presence: the map counts distinct subjects per
        // shard, so the bit drops only when both are gone. Exercised here
        // with same-shard subjects (hash collisions are impractical to
        // construct; the per-shard count logic is identical).
        let idx = ShardedMetadataIndex::new(ShardRouter::new(1, 7));
        idx.insert("k1", "alice", ["p".to_string()]);
        idx.insert("k2", "bob", ["p".to_string()]);
        idx.remove("k1");
        assert!(idx.presence().shards_with("alice").is_empty());
        assert_eq!(idx.presence().shards_with("bob"), vec![0]);
        assert_eq!(idx.keys_of_subject("bob"), vec!["k2"]);
    }

    // The pruned cross-segment queries must agree with an exact reference
    // (a single unsharded MetadataIndex) under arbitrary interleavings of
    // insert / remove / remove_purpose / clear.
    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig { cases: 64 })]
        #[test]
        fn pruned_queries_match_exact_index(
            ops in proptest::collection::vec(
                ((0u8..100, 0u8..12), (0u8..4, 0u8..3)),
                1..120,
            ),
            shards in 1usize..9,
        ) {
            let sharded = ShardedMetadataIndex::new(ShardRouter::new(shards, 7));
            let mut exact = MetadataIndex::new();
            for ((op, key), (subject, purpose)) in ops {
                let key = format!("key:{key:02}");
                let subject = format!("subject:{subject}");
                let purpose = format!("purpose:{purpose}");
                match op {
                    0..=59 => {
                        sharded.insert(&key, &subject, [purpose.clone()]);
                        exact.insert(&key, &subject, [purpose]);
                    }
                    60..=89 => {
                        sharded.remove(&key);
                        exact.remove(&key);
                    }
                    90..=97 => {
                        sharded.remove_purpose(&key, &purpose);
                        exact.remove_purpose(&key, &purpose);
                    }
                    _ => {
                        sharded.clear();
                        exact.clear();
                    }
                }
            }
            for s in 0..12 {
                let subject = format!("subject:{s}");
                proptest::prop_assert_eq!(
                    sharded.keys_of_subject(&subject),
                    exact.keys_of_subject(&subject)
                );
                proptest::prop_assert_eq!(
                    sharded.subject_key_count(&subject),
                    exact.subject_key_count(&subject)
                );
                // A cleared presence bit is always truthful: no segment may
                // still hold postings for the subject.
                let shards_with = sharded.presence().shards_with(&subject);
                for shard in 0..sharded.segment_count() {
                    if !shards_with.contains(&shard) {
                        proptest::prop_assert!(sharded
                            .with_segment(shard, |seg| seg.keys_of_subject(&subject).is_empty()));
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_index_is_safe_under_concurrent_mutation() {
        let idx = ShardedMetadataIndex::new(ShardRouter::new(8, 7));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let idx = &idx;
                scope.spawn(move || {
                    for i in 0..100 {
                        idx.insert(
                            &format!("t{t}:k{i}"),
                            &format!("subject{t}"),
                            ["p".to_string()],
                        );
                    }
                });
            }
        });
        let total: usize = (0..8)
            .map(|t| idx.subject_key_count(&format!("subject{t}")))
            .sum();
        assert_eq!(total, 800);
    }
}
