//! A YCSB-style workload generator and benchmark driver.
//!
//! The paper evaluates its GDPR-compliant Redis with the Yahoo! Cloud
//! Serving Benchmark: the load phases of workloads A and E plus the run
//! phases of workloads A–F (Figure 1). This crate re-implements the parts
//! of YCSB those experiments need, in Rust:
//!
//! * the core **request distributions** (uniform, zipfian, scrambled
//!   zipfian, latest, hotspot) in [`generator`];
//! * the **core workload** model — record/operation counts, field
//!   count/length, operation mix, scan lengths — and the standard workload
//!   presets A–F in [`workload`];
//! * a **driver** that runs a load phase and a transaction phase against
//!   anything implementing [`client::KvInterface`], collecting throughput
//!   and latency percentiles in [`stats`].
//!
//! The crate is deliberately storage-agnostic: adapters for the embedded
//! engine, the GDPR layer and the simulated network client live next to the
//! benchmark harness, not here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod concurrent;
pub mod generator;
pub mod stats;
pub mod workload;

use std::error::Error;
use std::fmt;

/// Error type for workload execution: wraps whatever the underlying store
/// adapter reports.
#[derive(Debug)]
pub struct WorkloadError {
    /// Human-readable description of what failed.
    pub message: String,
}

impl WorkloadError {
    /// Create an error from anything displayable.
    pub fn new(message: impl fmt::Display) -> Self {
        WorkloadError {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload error: {}", self.message)
    }
}

impl Error for WorkloadError {}

/// Result alias for workload operations.
pub type Result<T> = std::result::Result<T, WorkloadError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(WorkloadError::new("boom").to_string().contains("boom"));
    }
}
