//! Umbrella crate for the GDPR-compliant storage workspace.
//!
//! This crate only re-exports the workspace members so that the
//! top-level `examples/` and `tests/` directories can exercise the whole
//! system through a single dependency. The real functionality lives in:
//!
//! * [`gdpr_core`] — the GDPR compliance layer (the paper's contribution)
//! * [`kvstore`] — the Redis-like storage engine substrate
//! * [`gdpr_server`] — the real RESP-over-TCP server and remote client
//! * [`ycsb`] — the YCSB-style workload generator for the data path
//! * [`gdprbench`] — the GDPRbench-style four-role workload suite for the
//!   rights/metadata paths
//! * [`audit`], [`gdpr_crypto`], [`netsim`], [`resp`] — supporting substrates

pub use audit;
pub use gdpr_core;
pub use gdpr_crypto;
pub use gdpr_server;
pub use gdprbench;
pub use kvstore;
pub use netsim;
pub use resp;
pub use ycsb;
