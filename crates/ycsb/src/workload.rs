//! The YCSB core workload and the standard A–F presets.
//!
//! A workload is a specification: how many records, how many operations,
//! the operation mix, the request distribution and the record shape. The
//! [`CoreWorkload`] state machine turns that specification into a stream of
//! [`WorkloadOp`]s which the driver applies to a store adapter.

use std::collections::BTreeMap;

use rand::Rng;

use crate::generator::{
    CounterGenerator, HotspotGenerator, NumberGenerator, ScrambledZipfianGenerator,
    SkewedLatestGenerator, UniformGenerator,
};

/// How request keys are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestDistribution {
    /// Every record equally likely.
    Uniform,
    /// Scrambled zipfian (YCSB default for A/B/C/E/F).
    Zipfian,
    /// Most recently inserted records are hottest (workload D).
    Latest,
    /// A hot set receives most operations.
    Hotspot,
}

/// The kinds of operation a workload can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperationType {
    /// Read one record.
    Read,
    /// Overwrite one field of an existing record.
    Update,
    /// Insert a new record.
    Insert,
    /// Read a short ordered range of records.
    Scan,
    /// Read a record then write it back (workload F).
    ReadModifyWrite,
}

/// One concrete operation produced by the workload generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Read the record stored under `key`.
    Read {
        /// Record key.
        key: String,
    },
    /// Overwrite `fields` of the record under `key`.
    Update {
        /// Record key.
        key: String,
        /// Field values to write.
        fields: BTreeMap<String, Vec<u8>>,
    },
    /// Insert a new record.
    Insert {
        /// Record key.
        key: String,
        /// Full set of field values.
        fields: BTreeMap<String, Vec<u8>>,
    },
    /// Scan `count` records starting at `start_key`.
    Scan {
        /// First key of the range.
        start_key: String,
        /// Number of records to read.
        count: usize,
    },
    /// Read then update the record under `key`.
    ReadModifyWrite {
        /// Record key.
        key: String,
        /// Field values to write after the read.
        fields: BTreeMap<String, Vec<u8>>,
    },
}

impl WorkloadOp {
    /// The operation type of this concrete op.
    #[must_use]
    pub fn op_type(&self) -> OperationType {
        match self {
            WorkloadOp::Read { .. } => OperationType::Read,
            WorkloadOp::Update { .. } => OperationType::Update,
            WorkloadOp::Insert { .. } => OperationType::Insert,
            WorkloadOp::Scan { .. } => OperationType::Scan,
            WorkloadOp::ReadModifyWrite { .. } => OperationType::ReadModifyWrite,
        }
    }
}

/// Specification of a workload (the `workloads/workload?` property files of
/// the original YCSB).
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Human-readable name ("A", "B", … or custom).
    pub name: String,
    /// Number of records loaded before the transaction phase.
    pub record_count: u64,
    /// Number of operations in the transaction phase.
    pub operation_count: u64,
    /// Number of fields per record (YCSB default 10).
    pub field_count: usize,
    /// Bytes per field (YCSB default 100).
    pub field_length: usize,
    /// Proportion of reads.
    pub read_proportion: f64,
    /// Proportion of updates.
    pub update_proportion: f64,
    /// Proportion of inserts.
    pub insert_proportion: f64,
    /// Proportion of scans.
    pub scan_proportion: f64,
    /// Proportion of read-modify-writes.
    pub read_modify_write_proportion: f64,
    /// Request key distribution.
    pub request_distribution: RequestDistribution,
    /// Maximum scan length (scan lengths are uniform in `[1, max]`).
    pub max_scan_length: usize,
    /// Whether updates write all fields (false = one random field, the
    /// YCSB default).
    pub write_all_fields: bool,
}

impl WorkloadSpec {
    /// YCSB workload A: update heavy (50/50 read/update), zipfian.
    #[must_use]
    pub fn workload_a(record_count: u64, operation_count: u64) -> Self {
        WorkloadSpec {
            name: "A".into(),
            read_proportion: 0.5,
            update_proportion: 0.5,
            ..Self::base(record_count, operation_count)
        }
    }

    /// YCSB workload B: read mostly (95/5), zipfian.
    #[must_use]
    pub fn workload_b(record_count: u64, operation_count: u64) -> Self {
        WorkloadSpec {
            name: "B".into(),
            read_proportion: 0.95,
            update_proportion: 0.05,
            ..Self::base(record_count, operation_count)
        }
    }

    /// YCSB workload C: read only, zipfian.
    #[must_use]
    pub fn workload_c(record_count: u64, operation_count: u64) -> Self {
        WorkloadSpec {
            name: "C".into(),
            read_proportion: 1.0,
            ..Self::base(record_count, operation_count)
        }
    }

    /// YCSB workload D: read latest (95 % reads, 5 % inserts, latest
    /// distribution).
    #[must_use]
    pub fn workload_d(record_count: u64, operation_count: u64) -> Self {
        WorkloadSpec {
            name: "D".into(),
            read_proportion: 0.95,
            insert_proportion: 0.05,
            request_distribution: RequestDistribution::Latest,
            ..Self::base(record_count, operation_count)
        }
    }

    /// YCSB workload E: short ranges (95 % scans, 5 % inserts).
    #[must_use]
    pub fn workload_e(record_count: u64, operation_count: u64) -> Self {
        WorkloadSpec {
            name: "E".into(),
            scan_proportion: 0.95,
            insert_proportion: 0.05,
            max_scan_length: 100,
            ..Self::base(record_count, operation_count)
        }
    }

    /// YCSB workload F: read-modify-write (50 % reads, 50 % RMW).
    #[must_use]
    pub fn workload_f(record_count: u64, operation_count: u64) -> Self {
        WorkloadSpec {
            name: "F".into(),
            read_proportion: 0.5,
            read_modify_write_proportion: 0.5,
            ..Self::base(record_count, operation_count)
        }
    }

    /// The preset for a single-letter workload name.
    ///
    /// # Panics
    ///
    /// Panics on names other than `A`–`F`.
    #[must_use]
    pub fn by_name(name: &str, record_count: u64, operation_count: u64) -> Self {
        match name.to_ascii_uppercase().as_str() {
            "A" => Self::workload_a(record_count, operation_count),
            "B" => Self::workload_b(record_count, operation_count),
            "C" => Self::workload_c(record_count, operation_count),
            "D" => Self::workload_d(record_count, operation_count),
            "E" => Self::workload_e(record_count, operation_count),
            "F" => Self::workload_f(record_count, operation_count),
            other => panic!("unknown YCSB workload {other:?}"),
        }
    }

    fn base(record_count: u64, operation_count: u64) -> Self {
        WorkloadSpec {
            name: "custom".into(),
            record_count,
            operation_count,
            field_count: 10,
            field_length: 100,
            read_proportion: 0.0,
            update_proportion: 0.0,
            insert_proportion: 0.0,
            scan_proportion: 0.0,
            read_modify_write_proportion: 0.0,
            request_distribution: RequestDistribution::Zipfian,
            max_scan_length: 100,
            write_all_fields: false,
        }
    }

    /// Approximate size of one full record in bytes.
    #[must_use]
    pub fn record_size(&self) -> usize {
        self.field_count * self.field_length
    }
}

/// The workload state machine: owns the key-choosing generators and hands
/// out concrete operations.
#[derive(Debug)]
pub struct CoreWorkload {
    spec: WorkloadSpec,
    key_sequence: CounterGenerator,
    request_chooser: RequestChooser,
    field_chooser: UniformGenerator,
    scan_length: UniformGenerator,
    inserted: u64,
}

#[derive(Debug)]
enum RequestChooser {
    Uniform(UniformGenerator),
    Zipfian(ScrambledZipfianGenerator),
    Latest(SkewedLatestGenerator),
    Hotspot(HotspotGenerator),
}

impl CoreWorkload {
    /// Build the state machine for a specification.
    ///
    /// # Panics
    ///
    /// Panics if the operation proportions do not sum to (approximately) 1
    /// for a transaction phase, or if `record_count` is zero.
    #[must_use]
    pub fn new(spec: WorkloadSpec) -> Self {
        assert!(spec.record_count > 0, "record_count must be positive");
        let total = spec.read_proportion
            + spec.update_proportion
            + spec.insert_proportion
            + spec.scan_proportion
            + spec.read_modify_write_proportion;
        assert!(
            (total - 1.0).abs() < 1e-6,
            "operation proportions must sum to 1 (got {total})"
        );

        let request_chooser = match spec.request_distribution {
            RequestDistribution::Uniform => {
                RequestChooser::Uniform(UniformGenerator::new(0, spec.record_count - 1))
            }
            RequestDistribution::Zipfian => {
                // Size the distribution for records that will be inserted
                // during the run too, as YCSB does.
                let expected_new =
                    (spec.operation_count as f64 * spec.insert_proportion * 2.0) as u64;
                RequestChooser::Zipfian(ScrambledZipfianGenerator::new(
                    spec.record_count + expected_new.max(1),
                ))
            }
            RequestDistribution::Latest => {
                RequestChooser::Latest(SkewedLatestGenerator::new(spec.record_count - 1))
            }
            RequestDistribution::Hotspot => {
                RequestChooser::Hotspot(HotspotGenerator::new(spec.record_count, 0.2, 0.8))
            }
        };

        CoreWorkload {
            key_sequence: CounterGenerator::new(spec.record_count),
            field_chooser: UniformGenerator::new(0, spec.field_count.saturating_sub(1) as u64),
            scan_length: UniformGenerator::new(1, spec.max_scan_length.max(1) as u64),
            request_chooser,
            inserted: spec.record_count,
            spec,
        }
    }

    /// The specification this workload was built from.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The key for record index `i` (`user` plus a zero-padded number, so
    /// lexicographic scan order matches insertion order).
    #[must_use]
    pub fn key_for(&self, index: u64) -> String {
        format!("user{index:012}")
    }

    /// Generate the full field map for a new record.
    pub fn build_record<R: Rng + ?Sized>(&self, rng: &mut R) -> BTreeMap<String, Vec<u8>> {
        (0..self.spec.field_count)
            .map(|i| {
                (
                    format!("field{i}"),
                    random_field(rng, self.spec.field_length),
                )
            })
            .collect()
    }

    /// Generate the fields written by an update (one random field, or all
    /// of them if `write_all_fields` is set).
    pub fn build_update<R: Rng + ?Sized>(&mut self, rng: &mut R) -> BTreeMap<String, Vec<u8>> {
        if self.spec.write_all_fields {
            self.build_record(rng)
        } else {
            let field = self.field_chooser.next_value(rng);
            let mut map = BTreeMap::new();
            map.insert(
                format!("field{field}"),
                random_field(rng, self.spec.field_length),
            );
            map
        }
    }

    /// The sequence of operations for the load phase: one insert per record.
    pub fn load_op<R: Rng + ?Sized>(&self, rng: &mut R, index: u64) -> WorkloadOp {
        WorkloadOp::Insert {
            key: self.key_for(index),
            fields: self.build_record(rng),
        }
    }

    /// Choose an existing record respecting the request distribution.
    fn choose_existing_key<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        let candidate = match &mut self.request_chooser {
            RequestChooser::Uniform(g) => g.next_value(rng),
            RequestChooser::Zipfian(g) => g.next_value(rng),
            RequestChooser::Latest(g) => g.next_value(rng),
            RequestChooser::Hotspot(g) => g.next_value(rng),
        };
        // The zipfian chooser is sized past the current insert point;
        // fold overshoot back into the existing keyspace as YCSB does.
        let index = if candidate < self.inserted {
            candidate
        } else {
            candidate % self.inserted
        };
        self.key_for(index)
    }

    /// Produce the next transaction-phase operation.
    pub fn next_op<R: Rng + ?Sized>(&mut self, rng: &mut R) -> WorkloadOp {
        let spec = &self.spec;
        let roll: f64 = rng.gen();
        let mut threshold = spec.read_proportion;
        if roll < threshold {
            return WorkloadOp::Read {
                key: self.choose_existing_key(rng),
            };
        }
        threshold += spec.update_proportion;
        if roll < threshold {
            let key = self.choose_existing_key(rng);
            let fields = self.build_update(rng);
            return WorkloadOp::Update { key, fields };
        }
        threshold += spec.insert_proportion;
        if roll < threshold {
            let index = self.key_sequence.next_value(rng);
            self.inserted = index + 1;
            if let RequestChooser::Latest(g) = &mut self.request_chooser {
                g.observe_insert(index);
            }
            return WorkloadOp::Insert {
                key: self.key_for(index),
                fields: self.build_record(rng),
            };
        }
        threshold += spec.scan_proportion;
        if roll < threshold {
            let start_key = self.choose_existing_key(rng);
            let count = self.scan_length.next_value(rng) as usize;
            return WorkloadOp::Scan { start_key, count };
        }
        let key = self.choose_existing_key(rng);
        let fields = self.build_update(rng);
        WorkloadOp::ReadModifyWrite { key, fields }
    }
}

/// Random printable field value of the given length.
fn random_field<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<u8> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn presets_have_the_published_mixes() {
        let a = WorkloadSpec::workload_a(100, 100);
        assert_eq!((a.read_proportion, a.update_proportion), (0.5, 0.5));
        let b = WorkloadSpec::workload_b(100, 100);
        assert_eq!((b.read_proportion, b.update_proportion), (0.95, 0.05));
        let c = WorkloadSpec::workload_c(100, 100);
        assert_eq!(c.read_proportion, 1.0);
        let d = WorkloadSpec::workload_d(100, 100);
        assert_eq!(d.request_distribution, RequestDistribution::Latest);
        let e = WorkloadSpec::workload_e(100, 100);
        assert_eq!((e.scan_proportion, e.insert_proportion), (0.95, 0.05));
        let f = WorkloadSpec::workload_f(100, 100);
        assert_eq!(f.read_modify_write_proportion, 0.5);
        assert_eq!(WorkloadSpec::by_name("e", 10, 10).name, "E");
    }

    #[test]
    #[should_panic(expected = "unknown YCSB workload")]
    fn unknown_preset_panics() {
        let _ = WorkloadSpec::by_name("Z", 1, 1);
    }

    #[test]
    fn record_shape_follows_spec() {
        let spec = WorkloadSpec::workload_a(10, 10);
        let wl = CoreWorkload::new(spec);
        let record = wl.build_record(&mut rng());
        assert_eq!(record.len(), 10);
        assert!(record.contains_key("field0"));
        assert!(record.contains_key("field9"));
        assert!(record.values().all(|v| v.len() == 100));
        assert_eq!(wl.spec().record_size(), 1_000);
    }

    #[test]
    fn keys_are_zero_padded_and_ordered() {
        let wl = CoreWorkload::new(WorkloadSpec::workload_c(10, 10));
        assert_eq!(wl.key_for(7), "user000000000007");
        assert!(wl.key_for(9) < wl.key_for(10));
        assert!(wl.key_for(99) < wl.key_for(100));
    }

    #[test]
    fn load_phase_inserts_every_record() {
        let wl = CoreWorkload::new(WorkloadSpec::workload_a(5, 5));
        let mut rng = rng();
        for i in 0..5 {
            match wl.load_op(&mut rng, i) {
                WorkloadOp::Insert { key, fields } => {
                    assert_eq!(key, wl.key_for(i));
                    assert_eq!(fields.len(), 10);
                }
                other => panic!("load phase must insert, got {other:?}"),
            }
        }
    }

    #[test]
    fn operation_mix_approximates_proportions() {
        let mut wl = CoreWorkload::new(WorkloadSpec::workload_a(1_000, 10_000));
        let mut rng = rng();
        let mut counts: HashMap<OperationType, u32> = HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(wl.next_op(&mut rng).op_type()).or_default() += 1;
        }
        let reads = f64::from(*counts.get(&OperationType::Read).unwrap_or(&0));
        let updates = f64::from(*counts.get(&OperationType::Update).unwrap_or(&0));
        assert!((0.45..0.55).contains(&(reads / 10_000.0)), "reads {reads}");
        assert!(
            (0.45..0.55).contains(&(updates / 10_000.0)),
            "updates {updates}"
        );
        assert_eq!(*counts.get(&OperationType::Scan).unwrap_or(&0), 0);
    }

    #[test]
    fn workload_e_produces_scans_with_bounded_length() {
        let mut wl = CoreWorkload::new(WorkloadSpec::workload_e(1_000, 1_000));
        let mut rng = rng();
        let mut scans = 0;
        for _ in 0..1_000 {
            if let WorkloadOp::Scan { count, .. } = wl.next_op(&mut rng) {
                scans += 1;
                assert!((1..=100).contains(&count));
            }
        }
        assert!(scans > 900, "workload E should be ~95% scans, got {scans}");
    }

    #[test]
    fn workload_d_inserts_grow_the_keyspace() {
        let mut wl = CoreWorkload::new(WorkloadSpec::workload_d(100, 1_000));
        let mut rng = rng();
        let mut inserted_keys = Vec::new();
        for _ in 0..1_000 {
            if let WorkloadOp::Insert { key, .. } = wl.next_op(&mut rng) {
                inserted_keys.push(key);
            }
        }
        assert!(!inserted_keys.is_empty());
        // New keys continue the sequence after the loaded range.
        assert!(inserted_keys[0] >= wl.key_for(100));
        // All referenced keys stay within what exists.
        for _ in 0..1_000 {
            if let WorkloadOp::Read { key } = wl.next_op(&mut rng) {
                assert!(key <= wl.key_for(wl.inserted));
            }
        }
    }

    #[test]
    fn updates_touch_one_field_by_default_and_all_when_asked() {
        let mut one = CoreWorkload::new(WorkloadSpec::workload_a(10, 10));
        let mut rng = rng();
        assert_eq!(one.build_update(&mut rng).len(), 1);
        let mut spec = WorkloadSpec::workload_a(10, 10);
        spec.write_all_fields = true;
        let mut all = CoreWorkload::new(spec);
        assert_eq!(all.build_update(&mut rng).len(), 10);
    }

    #[test]
    fn workload_f_emits_read_modify_writes() {
        let mut wl = CoreWorkload::new(WorkloadSpec::workload_f(100, 1_000));
        let mut rng = rng();
        let rmw = (0..1_000)
            .filter(|_| matches!(wl.next_op(&mut rng), WorkloadOp::ReadModifyWrite { .. }))
            .count();
        assert!((400..600).contains(&rmw), "rmw count {rmw}");
    }

    #[test]
    #[should_panic(expected = "proportions must sum to 1")]
    fn invalid_proportions_panic() {
        let mut spec = WorkloadSpec::workload_a(10, 10);
        spec.read_proportion = 0.9;
        let _ = CoreWorkload::new(spec);
    }
}
