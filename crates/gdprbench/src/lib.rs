//! GDPRbench for the reproduction: the four-role workload suite from
//! *Understanding and Benchmarking the Impact of GDPR on Database Systems*
//! (Shastri et al.), rebuilt on this repository's compliance layer.
//!
//! YCSB (in `crates/ycsb`) measures the data path — reads, updates, scans —
//! and never touches the rights paths that make a GDPR store different
//! from a plain KV store. GDPRbench models the four parties the regulation
//! names and stresses exactly those metadata-heavy paths:
//!
//! * **customer** — a data subject exercising their rights over their own
//!   data: `GDPR.KEYSOF`, `GDPR.EXPORT` (Art. 20), `GDPR.GETMETA`,
//!   `GDPR.OBJECT` (Art. 21) and the occasional `GDPR.ERASE` (Art. 17);
//! * **controller** — the operator curating metadata: purpose re-stamps
//!   via `GDPR.SETMETA`, metadata reads, fresh `GDPR.PUT`s;
//! * **processor** — the data-plane consumer reading values under purpose
//!   checks (plain `GET` on the compliance engine), the path where
//!   purpose-limitation denials actually happen;
//! * **regulator** — the supervisory authority auditing holdings:
//!   subject-key fan-outs, metadata inspections, portability exports and
//!   compliance-counter queries (`GDPR.STATS`).
//!
//! The suite is **deterministic by construction**: [`spec::BenchSpec`]
//! expands to a flat, seeded op stream ([`ops::GdprOp`]) *before* any
//! store is involved, so the same seed + config produces a byte-identical
//! workload no matter how many shards route it or which transport carries
//! it. That is what makes the cross-transport differential battery
//! possible: the in-process, simulated-network and live-TCP paths run the
//! *same* ops and must produce the same per-op [`ops::Outcome`] stream and
//! the same final `DIGEST`.
//!
//! Layout:
//!
//! * [`spec`] — roles, op mixes and the workload specification;
//! * [`ops`] — the op/outcome model and the seeded generator;
//! * [`client`] — the transport abstraction (in-process [`GdprStore`],
//!   netsim, live TCP) with uniform outcome classification;
//! * [`runner`] — the multi-threaded driver with per-right
//!   [`obs::hist::LatencyHistogram`] stats.
//!
//! [`GdprStore`]: gdpr_core::store::GdprStore

pub mod client;
pub mod ops;
pub mod runner;
pub mod spec;

pub use client::{ClientFactory, GdprBenchClient, InProcessFactory, NetsimFactory, TcpFactory};
pub use ops::{GdprOp, Outcome};
pub use runner::{RunSummary, Runner};
pub use spec::{BenchSpec, Role};
