//! Per-key GDPR metadata.
//!
//! Articles 5 (purpose limitation), 13/15 (information duties), 17/5(e)
//! (storage limitation), 21 (objections), 30 (records of processing) and 46
//! (transfer restrictions) all require the store to know, for every piece
//! of personal data: whose it is, why it may be processed, who received it,
//! how long it may be kept, and where it may live. [`PersonalMetadata`]
//! carries exactly those attributes and serializes into a compact shadow
//! record the engine stores alongside the value.

use std::collections::BTreeSet;

use kvstore::serialize::{put_str, put_u64, Reader};

/// Identifier of a data subject (the natural person the data is about).
pub type SubjectId = String;

/// Geographic region where data physically resides (Article 46 transfer
/// control). Coarse on purpose: the paper only needs "can I prove where it
/// is and restrict where it goes".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[non_exhaustive]
pub enum Region {
    /// The European Union / EEA.
    #[default]
    Eu,
    /// United States.
    Us,
    /// Asia-Pacific.
    Apac,
    /// Anywhere else.
    Other,
}

impl Region {
    /// Stable string form used in serialization and reports.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Region::Eu => "eu",
            Region::Us => "us",
            Region::Apac => "apac",
            Region::Other => "other",
        }
    }

    /// Parse the stable string form.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "eu" => Region::Eu,
            "us" => Region::Us,
            "apac" => Region::Apac,
            "other" => Region::Other,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The GDPR attributes attached to one stored value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersonalMetadata {
    /// The data subject this value is about.
    pub subject: SubjectId,
    /// Purposes for which processing is permitted (whitelist, Article 5).
    pub purposes: BTreeSet<String>,
    /// Purposes the subject has objected to (blacklist, Article 21).
    pub objections: BTreeSet<String>,
    /// Where the data came from (directly from the subject, a third party…).
    pub origin: String,
    /// Recipients / processors the data has been disclosed to (Article 15's
    /// "recipients to whom it has been disclosed").
    pub recipients: BTreeSet<String>,
    /// Absolute expiry deadline in Unix milliseconds (storage limitation);
    /// `None` only for data under a "policy" TTL evaluated elsewhere.
    pub expires_at_ms: Option<u64>,
    /// Region where the value is stored.
    pub location: Region,
    /// Creation timestamp in Unix milliseconds (0 = set by the store at
    /// insertion time).
    pub created_at_ms: u64,
    /// Whether this value may be used in automated decision-making
    /// (Article 15(1)(h) / 22).
    pub automated_decisions: bool,
}

impl PersonalMetadata {
    /// Metadata for a value owned by `subject`, with no purposes yet.
    #[must_use]
    pub fn new(subject: &str) -> Self {
        PersonalMetadata {
            subject: subject.to_string(),
            purposes: BTreeSet::new(),
            objections: BTreeSet::new(),
            origin: "data-subject".to_string(),
            recipients: BTreeSet::new(),
            expires_at_ms: None,
            location: Region::Eu,
            created_at_ms: 0,
            automated_decisions: false,
        }
    }

    /// Builder-style: allow processing under `purpose`.
    #[must_use]
    pub fn with_purpose(mut self, purpose: &str) -> Self {
        self.purposes.insert(purpose.to_string());
        self
    }

    /// Builder-style: record an objection against `purpose`.
    #[must_use]
    pub fn with_objection(mut self, purpose: &str) -> Self {
        self.objections.insert(purpose.to_string());
        self
    }

    /// Builder-style: set an absolute expiry deadline.
    #[must_use]
    pub fn with_expiry_at(mut self, at_ms: u64) -> Self {
        self.expires_at_ms = Some(at_ms);
        self
    }

    /// Builder-style: set a TTL relative to the (to-be-assigned) creation
    /// time. Resolved to an absolute deadline when the store inserts it.
    #[must_use]
    pub fn with_ttl_millis(mut self, ttl_ms: u64) -> Self {
        // Marked by storing the TTL negated into expires_at with created==0;
        // the store resolves it. Simpler: keep the relative value and let
        // the store add the clock. We store it as-is and flag with
        // created_at_ms == 0.
        self.expires_at_ms = Some(ttl_ms);
        self
    }

    /// Builder-style: set the storage region.
    #[must_use]
    pub fn with_location(mut self, region: Region) -> Self {
        self.location = region;
        self
    }

    /// Builder-style: set the origin of the data.
    #[must_use]
    pub fn with_origin(mut self, origin: &str) -> Self {
        self.origin = origin.to_string();
        self
    }

    /// Builder-style: record a recipient/processor disclosure.
    #[must_use]
    pub fn with_recipient(mut self, recipient: &str) -> Self {
        self.recipients.insert(recipient.to_string());
        self
    }

    /// Builder-style: mark the value as used in automated decision-making.
    #[must_use]
    pub fn with_automated_decisions(mut self, enabled: bool) -> Self {
        self.automated_decisions = enabled;
        self
    }

    /// Whether processing under `purpose` is permitted: it must be
    /// whitelisted and not objected to.
    #[must_use]
    pub fn allows_purpose(&self, purpose: &str) -> bool {
        self.purposes.contains(purpose) && !self.objections.contains(purpose)
    }

    /// Record an objection (Article 21). Returns `true` if it was new.
    pub fn object_to(&mut self, purpose: &str) -> bool {
        self.objections.insert(purpose.to_string())
    }

    /// Serialize into the shadow-record byte form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.subject);
        put_str(&mut out, &self.origin);
        put_str(&mut out, self.location.as_str());
        put_u64(&mut out, self.created_at_ms);
        match self.expires_at_ms {
            Some(at) => {
                out.push(1);
                put_u64(&mut out, at);
            }
            None => out.push(0),
        }
        out.push(u8::from(self.automated_decisions));
        for set in [&self.purposes, &self.objections, &self.recipients] {
            put_u64(&mut out, set.len() as u64);
            for item in set {
                put_str(&mut out, item);
            }
        }
        out
    }

    /// Decode the shadow-record byte form.
    ///
    /// Returns `None` if the buffer is malformed.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        const CTX: &str = "gdpr metadata";
        let mut r = Reader::new(bytes);
        let subject = r.get_str(CTX).ok()?;
        let origin = r.get_str(CTX).ok()?;
        let location = Region::parse(&r.get_str(CTX).ok()?)?;
        let created_at_ms = r.get_u64(CTX).ok()?;
        let expires_at_ms = match r.get_u8(CTX).ok()? {
            1 => Some(r.get_u64(CTX).ok()?),
            0 => None,
            _ => return None,
        };
        let automated_decisions = match r.get_u8(CTX).ok()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let mut sets: Vec<BTreeSet<String>> = Vec::with_capacity(3);
        for _ in 0..3 {
            let n = r.get_u64(CTX).ok()?;
            let mut set = BTreeSet::new();
            for _ in 0..n {
                set.insert(r.get_str(CTX).ok()?);
            }
            sets.push(set);
        }
        let recipients = sets.pop()?;
        let objections = sets.pop()?;
        let purposes = sets.pop()?;
        if !r.is_at_end() {
            return None;
        }
        Some(PersonalMetadata {
            subject,
            purposes,
            objections,
            origin,
            recipients,
            expires_at_ms,
            location,
            created_at_ms,
            automated_decisions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PersonalMetadata {
        PersonalMetadata::new("alice")
            .with_purpose("billing")
            .with_purpose("analytics")
            .with_objection("marketing")
            .with_origin("signup-form")
            .with_recipient("payment-processor")
            .with_expiry_at(1_900_000_000_000)
            .with_location(Region::Eu)
            .with_automated_decisions(true)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut m = sample();
        m.created_at_ms = 1_800_000_000_000;
        let decoded = PersonalMetadata::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn roundtrip_with_minimal_fields() {
        let m = PersonalMetadata::new("bob");
        assert_eq!(PersonalMetadata::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_bytes() {
        let encoded = sample().encode();
        assert!(PersonalMetadata::decode(&encoded[..encoded.len() - 1]).is_none());
        let mut extended = encoded;
        extended.push(0);
        assert!(PersonalMetadata::decode(&extended).is_none());
        assert!(PersonalMetadata::decode(&[]).is_none());
    }

    #[test]
    fn purpose_checks_respect_whitelist_and_objections() {
        let m = sample();
        assert!(m.allows_purpose("billing"));
        assert!(m.allows_purpose("analytics"));
        assert!(
            !m.allows_purpose("marketing"),
            "not whitelisted AND objected"
        );
        assert!(!m.allows_purpose("profiling"), "not whitelisted");
        // Objection against a whitelisted purpose blocks it.
        let m2 = sample().with_objection("analytics");
        assert!(!m2.allows_purpose("analytics"));
    }

    #[test]
    fn object_to_is_idempotent_in_effect() {
        let mut m = sample();
        assert!(m.object_to("analytics"));
        assert!(!m.object_to("analytics"));
        assert!(!m.allows_purpose("analytics"));
    }

    #[test]
    fn region_parse_roundtrip() {
        for r in [Region::Eu, Region::Us, Region::Apac, Region::Other] {
            assert_eq!(Region::parse(r.as_str()), Some(r));
            assert_eq!(format!("{r}"), r.as_str());
        }
        assert_eq!(Region::parse("mars"), None);
        assert_eq!(Region::default(), Region::Eu);
    }
}
