//! A minimal HTTP/1.0 listener serving `GET /metrics`.
//!
//! Prometheus scrapes are rare (seconds apart), tiny (one request line)
//! and sequential, so the endpoint is deliberately the simplest thing
//! that speaks enough HTTP: one accept thread, one connection at a time,
//! `Connection: close` on every response. It shares the dispatcher with
//! the RESP transports, so a scrape sees exactly the counters and
//! histograms the wire surfaces see — rendered by
//! [`Dispatcher::render_prometheus`](crate::dispatch::Dispatcher).
//!
//! Enabled with the `metrics=host:port` flag of `gdpr-server`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::dispatch::Dispatcher;

/// Per-connection socket timeout: a scraper that stalls mid-request
/// cannot wedge the (single) accept loop for longer than this.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);

/// Cap on request bytes read before answering; a request line plus a
/// scraper's headers fit comfortably.
const MAX_REQUEST_BYTES: usize = 4096;

/// A running `/metrics` listener.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` and start serving scrapes of `dispatcher` on a
    /// background accept thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start(addr: impl ToSocketAddrs, dispatcher: Dispatcher) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("gdpr-metrics-http".to_string())
            .spawn(move || accept_loop(&listener, &dispatcher, &flag))?;
        Ok(MetricsServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves `:0` requests).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(listener: &TcpListener, dispatcher: &Dispatcher, shutdown: &AtomicBool) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Scrape errors are the scraper's problem; the loop must survive.
        let _ = serve_one(stream, dispatcher);
    }
}

/// Read one request, answer it, close. Only `GET /metrics` (with an
/// optional query string) is served; everything else gets 404.
fn serve_one(mut stream: TcpStream, dispatcher: &Dispatcher) -> std::io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;

    let mut request = Vec::new();
    let mut chunk = [0u8; 512];
    while !request.windows(2).any(|w| w == b"\r\n") && request.len() < MAX_REQUEST_BYTES {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        request.extend_from_slice(&chunk[..n]);
    }
    let request_line = request
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or("");

    let (status, content_type, body) = if method == "GET" && path == "/metrics" {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            dispatcher.render_prometheus(),
        )
    } else if method == "GET" && path == "/" {
        // A human poking the port gets a pointer, not a 404.
        (
            "200 OK",
            "text/plain; charset=utf-8",
            "see /metrics\n".to_string(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        )
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::config::StoreConfig;
    use kvstore::store::KvStore;

    fn http_get(addr: SocketAddr, target: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect metrics");
        stream
            .write_all(format!("GET {target} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    fn test_dispatcher() -> Dispatcher {
        Dispatcher::kv(KvStore::open(StoreConfig::in_memory()).expect("open store"))
    }

    #[test]
    fn serves_metrics_and_404s_everything_else() {
        let server = MetricsServer::start("127.0.0.1:0", test_dispatcher()).expect("start");
        let addr = server.local_addr();

        let ok = http_get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"), "{ok}");
        assert!(
            ok.contains("gdpr_server_command_latency_seconds_bucket"),
            "{ok}"
        );
        assert!(ok.contains("clients_connected"), "{ok}");

        let missing = http_get(addr, "/other");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

        let root = http_get(addr, "/");
        assert!(root.contains("see /metrics"), "{root}");

        server.shutdown();
    }

    #[test]
    fn shutdown_joins_the_accept_thread() {
        let server = MetricsServer::start("127.0.0.1:0", test_dispatcher()).expect("start");
        let addr = server.local_addr();
        server.shutdown();
        // After shutdown the listener is gone; a fresh bind of the same
        // port must succeed.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }
}
