//! The compliance matrix: Table 1 of the paper as code.
//!
//! The paper's Table 1 maps each storage-relevant GDPR article to the
//! storage feature that satisfies it. [`ARTICLES`] reproduces the table,
//! and [`assess`] combines it with a [`CompliancePolicy`] to produce the
//! self-assessment a deployment can print (or a regulator can ask for):
//! per article, which feature is needed, how completely this configuration
//! supports it, and whether it is handled in real time.

use crate::policy::{CompliancePolicy, SupportLevel};

/// The six storage features of §3.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageFeature {
    /// TTL-driven erasure of data whose purpose has lapsed.
    TimelyDeletion,
    /// Audit trail of all data- and control-path interactions.
    MonitoringLogging,
    /// Secondary indexes over metadata (subject, purpose, expiry).
    MetadataIndexing,
    /// Fine-grained, dynamic access control.
    AccessControl,
    /// Encryption at rest and in transit.
    Encryption,
    /// Knowing and restricting where data physically lives.
    ManageDataLocation,
}

impl StorageFeature {
    /// The feature name as used in the paper's Table 1.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            StorageFeature::TimelyDeletion => "Timely deletion",
            StorageFeature::MonitoringLogging => "Monitoring & logging",
            StorageFeature::MetadataIndexing => "Metadata indexing",
            StorageFeature::AccessControl => "Access control",
            StorageFeature::Encryption => "Encryption",
            StorageFeature::ManageDataLocation => "Manage data location",
        }
    }
}

/// One row of Table 1: a GDPR article, its key requirement and the storage
/// features it maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArticleMapping {
    /// Article number as printed in the paper (e.g. "5.1", "17", "33/34").
    pub article: &'static str,
    /// The article's short title.
    pub title: &'static str,
    /// The key requirement, paraphrased from the paper.
    pub requirement: &'static str,
    /// The storage features that satisfy the requirement.
    pub features: &'static [StorageFeature],
}

/// Table 1 of the paper.
pub const ARTICLES: &[ArticleMapping] = &[
    ArticleMapping {
        article: "5.1",
        title: "Purpose limitation",
        requirement: "Data must be collected and used for specific purposes",
        features: &[StorageFeature::MetadataIndexing],
    },
    ArticleMapping {
        article: "5.1(e)",
        title: "Storage limitation",
        requirement: "Data should not be stored beyond its purpose",
        features: &[StorageFeature::TimelyDeletion],
    },
    ArticleMapping {
        article: "5.2",
        title: "Accountability",
        requirement: "Controller must be able to demonstrate compliance",
        features: &[
            StorageFeature::TimelyDeletion,
            StorageFeature::MonitoringLogging,
            StorageFeature::MetadataIndexing,
            StorageFeature::AccessControl,
            StorageFeature::Encryption,
            StorageFeature::ManageDataLocation,
        ],
    },
    ArticleMapping {
        article: "13",
        title: "Conditions for data collection",
        requirement: "Get user's consent on how their data would be managed",
        features: &[
            StorageFeature::TimelyDeletion,
            StorageFeature::MonitoringLogging,
            StorageFeature::MetadataIndexing,
            StorageFeature::AccessControl,
            StorageFeature::Encryption,
            StorageFeature::ManageDataLocation,
        ],
    },
    ArticleMapping {
        article: "15",
        title: "Right of access by users",
        requirement: "Provide users a timely access to all their data",
        features: &[StorageFeature::MetadataIndexing],
    },
    ArticleMapping {
        article: "17",
        title: "Right to be forgotten",
        requirement: "Find and delete groups of data",
        features: &[StorageFeature::TimelyDeletion],
    },
    ArticleMapping {
        article: "20",
        title: "Right to data portability",
        requirement: "Transfer data to other controllers upon request",
        features: &[StorageFeature::MetadataIndexing],
    },
    ArticleMapping {
        article: "21",
        title: "Right to object",
        requirement: "Data should not be used for any objected reasons",
        features: &[StorageFeature::MetadataIndexing],
    },
    ArticleMapping {
        article: "25",
        title: "Protection by design and by default",
        requirement: "Safeguard and restrict access to data",
        features: &[StorageFeature::AccessControl, StorageFeature::Encryption],
    },
    ArticleMapping {
        article: "30",
        title: "Records of processing activity",
        requirement: "Store audit logs of all operations",
        features: &[StorageFeature::MonitoringLogging],
    },
    ArticleMapping {
        article: "32",
        title: "Security of data",
        requirement: "Implement appropriate data security measures",
        features: &[StorageFeature::AccessControl, StorageFeature::Encryption],
    },
    ArticleMapping {
        article: "33/34",
        title: "Notify data breaches",
        requirement: "Share insights and audit trails from concerned systems",
        features: &[StorageFeature::MonitoringLogging],
    },
    ArticleMapping {
        article: "46",
        title: "Transfers subject to safeguards",
        requirement: "Control where the data resides",
        features: &[StorageFeature::ManageDataLocation],
    },
];

/// How a given policy supports one feature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureAssessment {
    /// The feature being assessed.
    pub feature: StorageFeature,
    /// How completely it is supported.
    pub support: SupportLevel,
    /// Whether the feature operates in real time under this policy.
    pub real_time: bool,
}

/// The full self-assessment for a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplianceAssessment {
    /// Name of the assessed policy.
    pub policy_name: String,
    /// Per-feature assessment.
    pub features: Vec<FeatureAssessment>,
    /// Whether the configuration meets the paper's definition of strict
    /// compliance (full + real-time on every feature).
    pub strict: bool,
}

/// Assess a policy against the six features.
#[must_use]
pub fn assess(policy: &CompliancePolicy) -> ComplianceAssessment {
    let support_by_name: std::collections::HashMap<&'static str, SupportLevel> =
        policy.support_levels().into_iter().collect();

    let real_time = |feature: StorageFeature| match feature {
        StorageFeature::TimelyDeletion => {
            policy.expiry_mode == kvstore::expire::ExpiryMode::Strict
                && policy.erasure_response.is_real_time()
        }
        StorageFeature::MonitoringLogging => policy.audit_flush.is_real_time(),
        StorageFeature::MetadataIndexing => policy.maintain_indexes,
        StorageFeature::AccessControl => policy.enforce_access_control,
        StorageFeature::Encryption => policy.encrypt_at_rest && policy.encrypt_in_transit,
        StorageFeature::ManageDataLocation => !policy.location_policy.is_unrestricted(),
    };

    let features = [
        StorageFeature::TimelyDeletion,
        StorageFeature::MonitoringLogging,
        StorageFeature::MetadataIndexing,
        StorageFeature::AccessControl,
        StorageFeature::Encryption,
        StorageFeature::ManageDataLocation,
    ]
    .into_iter()
    .map(|feature| FeatureAssessment {
        feature,
        support: support_by_name
            .get(feature.name())
            .copied()
            .unwrap_or(SupportLevel::None),
        real_time: real_time(feature),
    })
    .collect();

    ComplianceAssessment {
        policy_name: policy.name.clone(),
        features,
        strict: policy.is_strict(),
    }
}

impl ComplianceAssessment {
    /// Support level for one feature.
    #[must_use]
    pub fn support_for(&self, feature: StorageFeature) -> SupportLevel {
        self.features
            .iter()
            .find(|f| f.feature == feature)
            .map_or(SupportLevel::None, |f| f.support)
    }

    /// Articles whose required features are not fully supported under this
    /// policy — the deployment's compliance gaps.
    #[must_use]
    pub fn gaps(&self) -> Vec<&'static ArticleMapping> {
        ARTICLES
            .iter()
            .filter(|mapping| {
                mapping
                    .features
                    .iter()
                    .any(|f| self.support_for(*f) != SupportLevel::Full)
            })
            .collect()
    }

    /// Render the Table 1-style matrix as fixed-width text.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Compliance assessment for policy {:?} (strict: {})\n\n",
            self.policy_name, self.strict
        ));
        out.push_str(&format!(
            "{:<22} {:<8} {:<9}\n",
            "Feature", "Support", "Real-time"
        ));
        out.push_str(&format!("{:-<22} {:-<8} {:-<9}\n", "", "", ""));
        for f in &self.features {
            out.push_str(&format!(
                "{:<22} {:<8} {:<9}\n",
                f.feature.name(),
                f.support.label(),
                if f.real_time { "yes" } else { "no" }
            ));
        }
        out.push('\n');
        out.push_str(&format!(
            "{:<8} {:<36} {:<55} Features\n",
            "Article", "Title", "Key requirement"
        ));
        out.push_str(&format!("{:-<8} {:-<36} {:-<55} {:-<30}\n", "", "", "", ""));
        for mapping in ARTICLES {
            let features: Vec<&str> = mapping.features.iter().map(|f| f.name()).collect();
            out.push_str(&format!(
                "{:<8} {:<36} {:<55} {}\n",
                mapping.article,
                mapping.title,
                mapping.requirement,
                features.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_the_papers_rows() {
        // The paper's Table 1 lists 13 article rows.
        assert_eq!(ARTICLES.len(), 13);
        assert!(ARTICLES.iter().any(|a| a.article == "17"));
        assert!(ARTICLES.iter().any(|a| a.article == "33/34"));
        // Article 17 maps to timely deletion.
        let art17 = ARTICLES.iter().find(|a| a.article == "17").unwrap();
        assert_eq!(art17.features, &[StorageFeature::TimelyDeletion]);
    }

    #[test]
    fn strict_policy_has_no_gaps() {
        let assessment = assess(&CompliancePolicy::strict());
        assert!(assessment.strict);
        assert!(assessment.gaps().is_empty(), "{:?}", assessment.gaps());
        assert!(assessment.features.iter().all(|f| f.real_time));
    }

    #[test]
    fn unmodified_policy_has_many_gaps() {
        let assessment = assess(&CompliancePolicy::unmodified());
        assert!(!assessment.strict);
        assert_eq!(
            assessment.gaps().len(),
            ARTICLES.len(),
            "every article is a gap for stock Redis"
        );
        assert_eq!(
            assessment.support_for(StorageFeature::Encryption),
            SupportLevel::None
        );
    }

    #[test]
    fn eventual_policy_is_full_but_not_real_time_everywhere() {
        let assessment = assess(&CompliancePolicy::eventual());
        assert!(!assessment.strict);
        assert!(
            assessment.gaps().is_empty(),
            "eventual compliance is still *full* support"
        );
        let monitoring = assessment
            .features
            .iter()
            .find(|f| f.feature == StorageFeature::MonitoringLogging)
            .unwrap();
        assert!(
            !monitoring.real_time,
            "everysec flushing is not real-time compliance"
        );
    }

    #[test]
    fn rendered_table_mentions_every_feature_and_article() {
        let text = assess(&CompliancePolicy::strict()).render_table();
        for feature in [
            "Timely deletion",
            "Monitoring & logging",
            "Metadata indexing",
            "Access control",
            "Encryption",
            "Manage data location",
        ] {
            assert!(text.contains(feature), "missing {feature}");
        }
        for mapping in ARTICLES {
            assert!(
                text.contains(mapping.article),
                "missing article {}",
                mapping.article
            );
        }
    }

    #[test]
    fn feature_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> = [
            StorageFeature::TimelyDeletion,
            StorageFeature::MonitoringLogging,
            StorageFeature::MetadataIndexing,
            StorageFeature::AccessControl,
            StorageFeature::Encryption,
            StorageFeature::ManageDataLocation,
        ]
        .iter()
        .map(StorageFeature::name)
        .collect();
        assert_eq!(names.len(), 6);
    }
}
