//! Time sources for the engine.
//!
//! Redis' expiry behaviour is a function of wall-clock time: keys carry an
//! absolute expiration timestamp in milliseconds and the active-expiry
//! cycle runs ten times per second. Figure 2 of the paper measures how long
//! (in wall-clock *hours*) it takes the lazy cycle to erase expired keys —
//! an experiment that is impractical to repeat literally. The engine
//! therefore reads time through the [`Clock`] trait: production code uses
//! [`SystemClock`], while benchmarks drive a shared [`SimClock`] forward in
//! milliseconds and measure the same delays in simulated seconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch (the engine's native time unit,
/// mirroring Redis' `mstime_t`).
pub type UnixMillis = u64;

/// A source of "now" in Unix milliseconds.
///
/// Implementations must be cheap to call: the engine consults the clock on
/// every read (lazy expiry check) and on every active-expiry cycle.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current time in milliseconds since the Unix epoch.
    fn now_millis(&self) -> UnixMillis;

    /// Current time as a [`Duration`] since the Unix epoch.
    fn now(&self) -> Duration {
        Duration::from_millis(self.now_millis())
    }
}

/// The real wall clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_millis(&self) -> UnixMillis {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO)
            .as_millis() as u64
    }
}

/// A manually advanced clock shared between the engine and a test/benchmark
/// driver.
///
/// Cloning a `SimClock` yields a handle to the *same* underlying instant, so
/// a benchmark can hold one handle while the database holds another.
///
/// # Example
///
/// ```
/// use kvstore::clock::{Clock, SimClock};
/// use std::time::Duration;
///
/// let clock = SimClock::new(1_000);
/// let handle = clock.clone();
/// handle.advance(Duration::from_secs(5));
/// assert_eq!(clock.now_millis(), 6_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// Create a simulated clock starting at `start_millis`.
    #[must_use]
    pub fn new(start_millis: UnixMillis) -> Self {
        SimClock {
            now: Arc::new(AtomicU64::new(start_millis)),
        }
    }

    /// Advance the clock by `delta` and return the new time.
    pub fn advance(&self, delta: Duration) -> UnixMillis {
        self.now
            .fetch_add(delta.as_millis() as u64, Ordering::SeqCst)
            + delta.as_millis() as u64
    }

    /// Advance the clock by `millis` milliseconds and return the new time.
    pub fn advance_millis(&self, millis: u64) -> UnixMillis {
        self.now.fetch_add(millis, Ordering::SeqCst) + millis
    }

    /// Jump the clock to an absolute time. Panics in debug builds if the
    /// target is in the past (simulated time never goes backwards).
    pub fn set(&self, millis: UnixMillis) {
        debug_assert!(
            millis >= self.now.load(Ordering::SeqCst),
            "SimClock must not go backwards"
        );
        self.now.store(millis, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now_millis(&self) -> UnixMillis {
        self.now.load(Ordering::SeqCst)
    }
}

/// A shared, dynamically dispatched clock handle as stored by the engine.
pub type SharedClock = Arc<dyn Clock>;

/// Convenience constructor for the default system clock handle.
#[must_use]
pub fn system_clock() -> SharedClock {
    Arc::new(SystemClock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_enough() {
        let c = SystemClock;
        let a = c.now_millis();
        let b = c.now_millis();
        assert!(b >= a);
        // Sanity: later than 2020-01-01 in ms.
        assert!(a > 1_577_836_800_000);
    }

    #[test]
    fn sim_clock_starts_at_given_time() {
        let c = SimClock::new(123);
        assert_eq!(c.now_millis(), 123);
        assert_eq!(c.now(), Duration::from_millis(123));
    }

    #[test]
    fn sim_clock_advance_is_shared_across_clones() {
        let c = SimClock::new(0);
        let h = c.clone();
        assert_eq!(h.advance(Duration::from_millis(250)), 250);
        assert_eq!(c.now_millis(), 250);
        assert_eq!(c.advance_millis(750), 1_000);
        assert_eq!(h.now_millis(), 1_000);
    }

    #[test]
    fn sim_clock_set_jumps_forward() {
        let c = SimClock::new(10);
        c.set(500);
        assert_eq!(c.now_millis(), 500);
    }

    #[test]
    fn shared_clock_trait_object_works() {
        let shared: SharedClock = Arc::new(SimClock::new(77));
        assert_eq!(shared.now_millis(), 77);
        let sys = system_clock();
        assert!(sys.now_millis() > 0);
    }
}
