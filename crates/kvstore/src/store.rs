//! The engine façade: [`KvStore`] ties the keyspace, the AOF, the device
//! layer and the expiry machinery together behind a thread-safe handle.
//!
//! Execution model (mirroring Redis):
//!
//! 1. every operation is a [`Command`];
//! 2. the command is executed against the in-memory [`Db`];
//! 3. if it is a write — or *any* command when read-logging is enabled
//!    (the GDPR monitoring retrofit) — it is appended to the AOF, whose
//!    fsync policy decides when the bytes become durable;
//! 4. time-driven work (active expiry, `everysec` fsync, auto-rewrite) runs
//!    from [`KvStore::tick`], which a server loop or benchmark calls
//!    periodically — 10 Hz matches Redis' `serverCron`.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::aof::{AofLog, AofStats};
use crate::clock::{SharedClock, UnixMillis};
use crate::commands::{Command, Reply};
use crate::config::{Persistence, StoreConfig};
use crate::db::Db;
use crate::device::{DeviceStats, EncryptedFileDevice, MemoryDevice, PlainFileDevice, StorageDevice};
use crate::expire::{run_expire_cycle, CycleOutcome};
use crate::object::Bytes;
use crate::snapshot;
use crate::stats::EngineStats;
use crate::Result;

struct Inner {
    db: Db,
    aof: Option<AofLog>,
    config: StoreConfig,
    rng: StdRng,
    stats_commands: u64,
    stats_reads: u64,
    stats_writes: u64,
    expire_cycles: u64,
    keys_expired_by_cycles: u64,
    auto_rewrites: u64,
    records_since_rewrite: u64,
    last_tick_ms: UnixMillis,
}

/// A thread-safe handle to the storage engine.
///
/// Cloning the handle is cheap and shares the same underlying state.
#[derive(Clone)]
pub struct KvStore {
    inner: Arc<Mutex<Inner>>,
    clock: SharedClock,
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("KvStore")
            .field("keys", &inner.db.len())
            .field("aof", &inner.aof.is_some())
            .finish()
    }
}

fn build_device(config: &StoreConfig) -> Result<Option<Box<dyn StorageDevice>>> {
    let base: Box<dyn StorageDevice> = match &config.persistence {
        Persistence::None => return Ok(None),
        Persistence::AofInMemory => Box::new(MemoryDevice::new()),
        Persistence::AofFile(path) => Box::new(PlainFileDevice::open(path)?),
    };
    if let Some(enc) = &config.encryption {
        let wrapped: Box<dyn StorageDevice> = match &config.persistence {
            Persistence::AofInMemory => {
                Box::new(EncryptedFileDevice::new(MemoryDevice::new(), &enc.passphrase)?)
            }
            Persistence::AofFile(path) => {
                Box::new(EncryptedFileDevice::new(PlainFileDevice::open(path)?, &enc.passphrase)?)
            }
            Persistence::None => unreachable!("handled above"),
        };
        drop(base);
        Ok(Some(wrapped))
    } else {
        Ok(Some(base))
    }
}

impl KvStore {
    /// Open an engine with the given configuration, replaying any existing
    /// append-only file.
    ///
    /// # Errors
    ///
    /// Returns configuration, I/O, decryption or corruption errors
    /// encountered while opening or replaying persistence.
    pub fn open(config: StoreConfig) -> Result<Self> {
        let clock = Arc::clone(&config.clock);
        let mut db = Db::new(Arc::clone(&clock));

        let aof = match build_device(&config)? {
            Some(device) => {
                let mut log = AofLog::new(device, config.fsync, Arc::clone(&clock));
                // Recover state by replaying journaled write commands.
                for record in log.load()? {
                    let cmd = Command::decode(&record)?;
                    if cmd.is_write() {
                        cmd.execute(&mut db)?;
                    }
                }
                db.reset_dirty();
                Some(log)
            }
            None => None,
        };

        let rng = match config.rng_seed {
            Some(seed) => StdRng::seed_from_u64(seed),
            None => StdRng::from_entropy(),
        };

        let now = clock.now_millis();
        let inner = Inner {
            db,
            aof,
            config,
            rng,
            stats_commands: 0,
            stats_reads: 0,
            stats_writes: 0,
            expire_cycles: 0,
            keys_expired_by_cycles: 0,
            auto_rewrites: 0,
            records_since_rewrite: 0,
            last_tick_ms: now,
        };
        Ok(KvStore { inner: Arc::new(Mutex::new(inner)), clock })
    }

    /// The clock this engine reads time from.
    #[must_use]
    pub fn clock(&self) -> SharedClock {
        Arc::clone(&self.clock)
    }

    // ----- command execution ------------------------------------------------

    /// Execute a command, journaling it according to the configuration.
    ///
    /// # Errors
    ///
    /// Propagates execution and persistence errors.
    pub fn execute(&self, command: Command) -> Result<Reply> {
        let mut inner = self.inner.lock();
        let is_write = command.is_write();
        let reply = command.execute(&mut inner.db)?;

        inner.stats_commands += 1;
        if is_write {
            inner.stats_writes += 1;
        } else {
            inner.stats_reads += 1;
        }

        let must_journal = inner.aof.is_some() && (is_write || inner.config.log_reads);
        if must_journal {
            let encoded = command.encode();
            if let Some(aof) = inner.aof.as_mut() {
                aof.append(&encoded)?;
            }
            inner.records_since_rewrite += 1;
            self.maybe_auto_rewrite(&mut inner)?;
        }
        Ok(reply)
    }

    fn maybe_auto_rewrite(&self, inner: &mut Inner) -> Result<()> {
        let threshold = inner.config.aof_rewrite_threshold_records;
        if threshold > 0 && inner.records_since_rewrite >= threshold {
            Self::rewrite_locked(inner)?;
            inner.auto_rewrites += 1;
        }
        Ok(())
    }

    // ----- convenience wrappers ----------------------------------------------

    /// Set a string key.
    pub fn set(&self, key: &str, value: Bytes) -> Result<()> {
        self.execute(Command::Set { key: key.to_string(), value }).map(|_| ())
    }

    /// Read a string key.
    pub fn get(&self, key: &str) -> Result<Option<Bytes>> {
        Ok(self.execute(Command::Get { key: key.to_string() })?.into_bytes())
    }

    /// Delete a key; returns whether it existed.
    pub fn delete(&self, key: &str) -> Result<bool> {
        Ok(self.execute(Command::Del { key: key.to_string() })? == Reply::Int(1))
    }

    /// Whether the key exists.
    pub fn exists(&self, key: &str) -> Result<bool> {
        Ok(self.execute(Command::Exists { key: key.to_string() })? == Reply::Int(1))
    }

    /// Set a TTL relative to now.
    pub fn expire_in(&self, key: &str, ttl: std::time::Duration) -> Result<bool> {
        Ok(self
            .execute(Command::Expire { key: key.to_string(), ttl_ms: ttl.as_millis() as u64 })?
            == Reply::Int(1))
    }

    /// Set an absolute expiration deadline in Unix milliseconds.
    pub fn expire_at(&self, key: &str, at_ms: UnixMillis) -> Result<bool> {
        Ok(self.execute(Command::ExpireAt { key: key.to_string(), at_ms })? == Reply::Int(1))
    }

    /// Remaining TTL, if the key exists and has one.
    pub fn ttl(&self, key: &str) -> Result<Option<std::time::Duration>> {
        Ok(match self.execute(Command::Ttl { key: key.to_string() })? {
            Reply::Int(ms) => Some(std::time::Duration::from_millis(ms as u64)),
            _ => None,
        })
    }

    /// Set a hash field.
    pub fn hset(&self, key: &str, field: &str, value: Bytes) -> Result<()> {
        self.execute(Command::HSet {
            key: key.to_string(),
            field: field.to_string(),
            value,
        })
        .map(|_| ())
    }

    /// Set several hash fields at once.
    pub fn hset_multi(
        &self,
        key: &str,
        fields: &std::collections::BTreeMap<String, Bytes>,
    ) -> Result<()> {
        self.execute(Command::HSetMulti { key: key.to_string(), fields: fields.clone() })
            .map(|_| ())
    }

    /// Read a hash field.
    pub fn hget(&self, key: &str, field: &str) -> Result<Option<Bytes>> {
        Ok(self
            .execute(Command::HGet { key: key.to_string(), field: field.to_string() })?
            .into_bytes())
    }

    /// Read a whole hash.
    pub fn hgetall(&self, key: &str) -> Result<Option<std::collections::BTreeMap<String, Bytes>>> {
        Ok(match self.execute(Command::HGetAll { key: key.to_string() })? {
            Reply::Map(m) => Some(m),
            _ => None,
        })
    }

    /// Keys matching a glob pattern.
    pub fn keys(&self, pattern: &str) -> Result<Vec<String>> {
        Ok(match self.execute(Command::Keys { pattern: pattern.to_string() })? {
            Reply::StringArray(keys) => keys,
            _ => Vec::new(),
        })
    }

    /// Ordered scan of up to `count` keys starting at `start`.
    pub fn scan(&self, start: &str, count: usize) -> Result<Vec<String>> {
        Ok(match self.execute(Command::Scan { start: start.to_string(), count: count as u64 })? {
            Reply::StringArray(keys) => keys,
            _ => Vec::new(),
        })
    }

    /// Number of keys in the keyspace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().db.len()
    }

    /// Whether the keyspace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of keys whose TTL deadline has passed but which have not been
    /// physically erased yet (Figure 2's quantity).
    #[must_use]
    pub fn pending_expired(&self) -> usize {
        self.inner.lock().db.pending_expired_len()
    }

    // ----- time-driven work ---------------------------------------------------

    /// Run one iteration of the engine's background duties: an expiry cycle
    /// (per the configured mode) and, under `everysec`, a possible fsync.
    /// Returns the expiry-cycle outcome so callers (e.g. the GDPR layer)
    /// can audit the erased keys.
    ///
    /// # Errors
    ///
    /// Propagates persistence errors from the fsync or from journaling the
    /// expiry deletions.
    pub fn tick(&self) -> Result<CycleOutcome> {
        let mut inner = self.inner.lock();
        let mode = inner.config.expiry_mode;
        let expire_cfg = inner.config.active_expire;
        let outcome = {
            let Inner { db, rng, .. } = &mut *inner;
            run_expire_cycle(db, mode, &expire_cfg, rng)
        };
        inner.expire_cycles += 1;
        inner.keys_expired_by_cycles += outcome.removed.len() as u64;

        // Propagate expiry deletions into the AOF so that replaying it
        // cannot resurrect erased personal data.
        if inner.aof.is_some() && !outcome.removed.is_empty() {
            let encoded: Vec<Vec<u8>> = outcome
                .removed
                .iter()
                .map(|key| Command::Del { key: clone_key(key) }.encode())
                .collect();
            if let Some(aof) = inner.aof.as_mut() {
                for record in &encoded {
                    aof.append(record)?;
                }
            }
        }

        if let Some(aof) = inner.aof.as_mut() {
            aof.maybe_fsync()?;
        }
        inner.last_tick_ms = self.clock.now_millis();
        Ok(outcome)
    }

    /// Rewrite (compact) the append-only file from the live dataset —
    /// `BGREWRITEAOF`. Returns the number of records dropped, i.e. how much
    /// stale (including deleted-but-persisting) data was purged.
    ///
    /// # Errors
    ///
    /// Propagates persistence errors. Returns `Ok(0)` when persistence is
    /// disabled.
    pub fn rewrite_aof(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        Self::rewrite_locked(&mut inner)
    }

    fn rewrite_locked(inner: &mut Inner) -> Result<u64> {
        let Inner { db, aof, .. } = inner;
        let Some(aof) = aof.as_mut() else { return Ok(0) };
        // Regenerate the minimal command stream from the live dataset.
        let mut commands: Vec<Command> = Vec::with_capacity(db.len() * 2);
        for (key, object) in db.iter() {
            match &object.value {
                crate::object::Value::Str(b) => {
                    commands.push(Command::Set { key: key.clone(), value: b.clone() });
                }
                crate::object::Value::Hash(map) => {
                    commands.push(Command::HSetMulti { key: key.clone(), fields: map.clone() });
                }
                crate::object::Value::List(items) => {
                    // Lists are journaled as a hash of index → element;
                    // adequate for recovery purposes in this engine.
                    let fields = items
                        .iter()
                        .enumerate()
                        .map(|(i, v)| (format!("{i:020}"), v.clone()))
                        .collect();
                    commands.push(Command::HSetMulti { key: key.clone(), fields });
                }
                crate::object::Value::Set(members) => {
                    for member in members {
                        commands.push(Command::SAdd { key: key.clone(), member: member.clone() });
                    }
                }
            }
            if let Some(at) = db.expire_deadline(key) {
                commands.push(Command::ExpireAt { key: key.clone(), at_ms: at });
            }
        }
        let records: Vec<Vec<u8>> = commands.iter().map(Command::encode).collect();
        let dropped = aof.rewrite(records.iter().map(Vec::as_slice))?;
        inner.records_since_rewrite = 0;
        inner.db.reset_dirty();
        Ok(dropped)
    }

    /// Force an AOF fsync regardless of policy.
    pub fn fsync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(aof) = inner.aof.as_mut() {
            aof.fsync()?;
        }
        Ok(())
    }

    // ----- snapshots -----------------------------------------------------------

    /// Serialize the current keyspace to a snapshot byte blob.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        snapshot::save_to_bytes(&self.inner.lock().db)
    }

    /// Replace the keyspace with the contents of a snapshot blob.
    ///
    /// # Errors
    ///
    /// Returns corruption errors from decoding.
    pub fn restore_snapshot(&self, bytes: &[u8]) -> Result<()> {
        snapshot::load_from_bytes(&mut self.inner.lock().db, bytes)
    }

    // ----- introspection --------------------------------------------------------

    /// A point-in-time statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let inner = self.inner.lock();
        EngineStats {
            commands_processed: inner.stats_commands,
            reads: inner.stats_reads,
            writes: inner.stats_writes,
            expire_cycles: inner.expire_cycles,
            keys_expired_by_cycles: inner.keys_expired_by_cycles,
            auto_rewrites: inner.auto_rewrites,
            db: inner.db.stats(),
            aof: inner.aof.as_ref().map(AofLog::stats).unwrap_or_default(),
            device: inner
                .aof
                .as_ref()
                .map(|_| DeviceStats::default())
                .unwrap_or_default(),
        }
    }

    /// AOF statistics, if persistence is enabled.
    #[must_use]
    pub fn aof_stats(&self) -> Option<AofStats> {
        self.inner.lock().aof.as_ref().map(AofLog::stats)
    }

    /// Bytes currently occupied by the AOF on its device.
    #[must_use]
    pub fn aof_len(&self) -> u64 {
        self.inner.lock().aof.as_ref().map_or(0, AofLog::device_len)
    }
}

fn clone_key(key: &str) -> String {
    key.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::expire::ExpiryMode;
    use std::time::Duration;

    #[test]
    fn basic_set_get_delete() {
        let store = KvStore::open(StoreConfig::in_memory()).unwrap();
        store.set("k", b"v".to_vec()).unwrap();
        assert_eq!(store.get("k").unwrap(), Some(b"v".to_vec()));
        assert!(store.exists("k").unwrap());
        assert!(store.delete("k").unwrap());
        assert!(!store.exists("k").unwrap());
        assert_eq!(store.len(), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn clone_shares_state() {
        let store = KvStore::open(StoreConfig::in_memory()).unwrap();
        let other = store.clone();
        store.set("shared", b"1".to_vec()).unwrap();
        assert_eq!(other.get("shared").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn ttl_and_expiry_via_tick() {
        let clock = SimClock::new(0);
        let store = KvStore::open(
            StoreConfig::in_memory().clock(clock.clone()).expiry_mode(ExpiryMode::Strict),
        )
        .unwrap();
        store.set("k", b"v".to_vec()).unwrap();
        store.expire_in("k", Duration::from_millis(500)).unwrap();
        assert!(store.ttl("k").unwrap().is_some());
        clock.advance_millis(600);
        assert_eq!(store.pending_expired(), 1);
        let outcome = store.tick().unwrap();
        assert_eq!(outcome.removed, vec!["k".to_string()]);
        assert_eq!(store.pending_expired(), 0);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn aof_replay_recovers_state() {
        let dir = std::env::temp_dir().join(format!("kvstore-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay.aof");
        let _ = std::fs::remove_file(&path);
        {
            let store = KvStore::open(StoreConfig::with_aof(&path)).unwrap();
            store.set("persistent", b"yes".to_vec()).unwrap();
            store.set("deleted", b"no".to_vec()).unwrap();
            store.delete("deleted").unwrap();
            store.hset("user", "email", b"a@b.c".to_vec()).unwrap();
            store.fsync().unwrap();
        }
        let reopened = KvStore::open(StoreConfig::with_aof(&path)).unwrap();
        assert_eq!(reopened.get("persistent").unwrap(), Some(b"yes".to_vec()));
        assert_eq!(reopened.get("deleted").unwrap(), None);
        assert_eq!(reopened.hget("user", "email").unwrap(), Some(b"a@b.c".to_vec()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn encrypted_aof_replay_recovers_state() {
        let dir = std::env::temp_dir().join(format!("kvstore-store-enc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("enc.aof");
        let _ = std::fs::remove_file(&path);
        {
            let store = KvStore::open(StoreConfig::with_aof(&path).encrypted(b"vault pw")).unwrap();
            store.set("secret", b"pii".to_vec()).unwrap();
            store.fsync().unwrap();
        }
        // Plaintext must not be on disk.
        let raw = std::fs::read(&path).unwrap();
        assert!(!raw.windows(3).any(|w| w == b"pii"));
        let reopened = KvStore::open(StoreConfig::with_aof(&path).encrypted(b"vault pw")).unwrap();
        assert_eq!(reopened.get("secret").unwrap(), Some(b"pii".to_vec()));
        // Wrong passphrase fails.
        assert!(KvStore::open(StoreConfig::with_aof(&path).encrypted(b"wrong")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_logging_journals_reads() {
        let store = KvStore::open(StoreConfig::in_memory().aof_in_memory().log_reads(true)).unwrap();
        store.set("k", b"v".to_vec()).unwrap();
        store.get("k").unwrap();
        store.get("k").unwrap();
        let stats = store.aof_stats().unwrap();
        assert_eq!(stats.records_appended, 3, "1 write + 2 reads journaled");

        let plain = KvStore::open(StoreConfig::in_memory().aof_in_memory()).unwrap();
        plain.set("k", b"v".to_vec()).unwrap();
        plain.get("k").unwrap();
        assert_eq!(plain.aof_stats().unwrap().records_appended, 1, "reads not journaled by default");
    }

    #[test]
    fn rewrite_compacts_overwrites_and_deletes() {
        let store = KvStore::open(StoreConfig::in_memory().aof_in_memory()).unwrap();
        for i in 0..50 {
            store.set("hot", vec![i as u8]).unwrap();
        }
        store.set("cold", b"keep".to_vec()).unwrap();
        store.set("gone", b"delete me".to_vec()).unwrap();
        store.delete("gone").unwrap();
        let before = store.aof_stats().unwrap().records_appended;
        assert!(before >= 53);
        let dropped = store.rewrite_aof().unwrap();
        assert!(dropped > 0);
        // After rewrite the log replays to exactly the live dataset.
        let snapshot_before = store.snapshot();
        let replayed = KvStore::open(StoreConfig::in_memory()).unwrap();
        replayed.restore_snapshot(&snapshot_before).unwrap();
        assert_eq!(replayed.get("hot").unwrap(), Some(vec![49]));
        assert_eq!(replayed.get("cold").unwrap(), Some(b"keep".to_vec()));
        assert_eq!(replayed.get("gone").unwrap(), None);
    }

    #[test]
    fn auto_rewrite_triggers_at_threshold() {
        let store = KvStore::open(
            StoreConfig::in_memory().aof_in_memory().aof_rewrite_threshold(10),
        )
        .unwrap();
        for i in 0..25 {
            store.set("k", vec![i as u8]).unwrap();
        }
        let stats = store.stats();
        assert!(stats.auto_rewrites >= 2, "expected at least 2 auto rewrites, got {}", stats.auto_rewrites);
    }

    #[test]
    fn expiry_deletions_are_journaled() {
        let clock = SimClock::new(0);
        let store = KvStore::open(
            StoreConfig::in_memory()
                .aof_in_memory()
                .clock(clock.clone())
                .expiry_mode(ExpiryMode::Strict),
        )
        .unwrap();
        store.set("temp", b"v".to_vec()).unwrap();
        store.expire_in("temp", Duration::from_millis(10)).unwrap();
        let before = store.aof_stats().unwrap().records_appended;
        clock.advance_millis(20);
        store.tick().unwrap();
        let after = store.aof_stats().unwrap().records_appended;
        assert_eq!(after, before + 1, "expiry must journal a DEL");
    }

    #[test]
    fn snapshot_roundtrip_via_store() {
        let store = KvStore::open(StoreConfig::in_memory()).unwrap();
        store.set("a", b"1".to_vec()).unwrap();
        store.hset("h", "f", b"2".to_vec()).unwrap();
        let blob = store.snapshot();
        let restored = KvStore::open(StoreConfig::in_memory()).unwrap();
        restored.restore_snapshot(&blob).unwrap();
        assert_eq!(restored.get("a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(restored.hget("h", "f").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn stats_track_reads_writes_and_hits() {
        let store = KvStore::open(StoreConfig::in_memory()).unwrap();
        store.set("k", b"v".to_vec()).unwrap();
        store.get("k").unwrap();
        store.get("missing").unwrap();
        let stats = store.stats();
        assert_eq!(stats.commands_processed, 3);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.db.keyspace_hits, 1);
        assert_eq!(stats.db.keyspace_misses, 1);
        assert!(stats.hit_ratio().unwrap() > 0.49);
        assert!(!stats.render().is_empty());
    }

    #[test]
    fn scan_and_keys_via_store() {
        let store = KvStore::open(StoreConfig::in_memory()).unwrap();
        for i in 0..5 {
            store.set(&format!("user{i}"), b"v".to_vec()).unwrap();
        }
        assert_eq!(store.keys("user*").unwrap().len(), 5);
        assert_eq!(store.scan("user2", 2).unwrap(), vec!["user2", "user3"]);
    }
}
