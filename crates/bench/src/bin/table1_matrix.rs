//! Reproduces **Table 1** of the paper: the mapping from GDPR articles to
//! required storage features, combined with a self-assessment of how each
//! compliance policy preset supports them.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin table1_matrix
//! ```

use gdpr_core::compliance::assess;
use gdpr_core::policy::CompliancePolicy;

fn main() {
    println!("Table 1 reproduction — GDPR articles, storage features, and per-policy support\n");
    for policy in [
        CompliancePolicy::unmodified(),
        CompliancePolicy::eventual(),
        CompliancePolicy::strict(),
    ] {
        let assessment = assess(&policy);
        println!("{}", assessment.render_table());
        let gaps = assessment.gaps();
        if gaps.is_empty() {
            println!("compliance gaps: none\n");
        } else {
            println!("compliance gaps ({}):", gaps.len());
            for gap in gaps {
                println!("  Art. {:<6} {}", gap.article, gap.title);
            }
            println!();
        }
        println!("{}\n", "=".repeat(100));
    }
}
