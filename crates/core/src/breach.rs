//! Breach notification support (Articles 33 and 34).
//!
//! When personal data is breached, the controller has **72 hours** to
//! notify the supervisory authority, describing the categories and
//! approximate number of data subjects and records concerned. That is an
//! audit-trail query: given a suspicion window and (optionally) the actor
//! believed to be compromised, reconstruct what was touched. This module
//! turns a parsed audit trail into exactly that report.

use std::collections::BTreeSet;

use audit::chain::ChainedRecord;
use audit::reader::{verify_trail, TrailQuery};
use audit::record::{Operation, Outcome};

use crate::export::Json;
use crate::Result;

/// The Article 33 notification deadline, in milliseconds.
pub const NOTIFICATION_DEADLINE_MS: u64 = 72 * 3_600 * 1_000;

/// Scope of a suspected breach.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BreachWindow {
    /// Start of the suspicion window (Unix milliseconds).
    pub from_ms: u64,
    /// End of the suspicion window (Unix milliseconds).
    pub until_ms: u64,
    /// If known, the compromised actor (service / credential).
    pub suspected_actor: Option<String>,
}

/// The assembled Article 33/34 report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreachReport {
    /// The window that was analysed.
    pub window: BreachWindow,
    /// When the report was generated (Unix milliseconds).
    pub generated_at_ms: u64,
    /// Whether the audit trail's hash chain verified (evidence integrity).
    pub trail_verified: bool,
    /// Data subjects whose records were touched in the window.
    pub affected_subjects: BTreeSet<String>,
    /// Keys touched in the window.
    pub affected_keys: BTreeSet<String>,
    /// Number of read interactions in the window.
    pub reads: u64,
    /// Number of write interactions in the window.
    pub writes: u64,
    /// Number of deletions in the window.
    pub deletes: u64,
    /// Number of denied accesses in the window (attack signal).
    pub denied_accesses: u64,
}

impl BreachReport {
    /// Milliseconds remaining until the notification deadline, measured
    /// from the *end* of the breach window (when the breach is deemed to
    /// have become known). `None` means the deadline has already passed.
    #[must_use]
    pub fn time_remaining_ms(&self, now_ms: u64) -> Option<u64> {
        let deadline = self
            .window
            .until_ms
            .saturating_add(NOTIFICATION_DEADLINE_MS);
        deadline.checked_sub(now_ms)
    }

    /// Whether the authority can still be notified within the deadline.
    #[must_use]
    pub fn within_deadline(&self, now_ms: u64) -> bool {
        self.time_remaining_ms(now_ms).is_some()
    }

    /// Render the notification as machine-readable JSON (the artefact a
    /// controller would attach to its Article 33 filing).
    #[must_use]
    pub fn to_json(&self) -> String {
        Json::object()
            .field("format", Json::string("gdpr-breach-notification/v1"))
            .field("window_from_ms", Json::integer(self.window.from_ms))
            .field("window_until_ms", Json::integer(self.window.until_ms))
            .field(
                "suspected_actor",
                self.window
                    .suspected_actor
                    .as_ref()
                    .map_or(Json::Null, Json::string),
            )
            .field("generated_at_ms", Json::integer(self.generated_at_ms))
            .field("trail_verified", Json::Bool(self.trail_verified))
            .field(
                "affected_subject_count",
                Json::integer(self.affected_subjects.len() as u64),
            )
            .field(
                "affected_subjects",
                Json::Array(self.affected_subjects.iter().map(Json::string).collect()),
            )
            .field(
                "affected_record_count",
                Json::integer(self.affected_keys.len() as u64),
            )
            .field("reads", Json::integer(self.reads))
            .field("writes", Json::integer(self.writes))
            .field("deletes", Json::integer(self.deletes))
            .field("denied_accesses", Json::integer(self.denied_accesses))
            .build()
            .render()
    }
}

/// Analyse a parsed audit trail for the given breach window.
///
/// # Errors
///
/// Currently infallible but returns `Result` so integrity-check failures
/// can become hard errors in stricter configurations.
pub fn analyze_breach(
    trail: &[ChainedRecord],
    window: &BreachWindow,
    now_ms: u64,
) -> Result<BreachReport> {
    let trail_verified = verify_trail(trail).is_ok();

    let mut query = TrailQuery::any().between(window.from_ms, window.until_ms);
    if let Some(actor) = &window.suspected_actor {
        query = query.actor(actor);
    }
    let hits = query.select(trail);

    let mut report = BreachReport {
        window: window.clone(),
        generated_at_ms: now_ms,
        trail_verified,
        affected_subjects: BTreeSet::new(),
        affected_keys: BTreeSet::new(),
        reads: 0,
        writes: 0,
        deletes: 0,
        denied_accesses: 0,
    };

    for record in hits {
        if let Some(subject) = &record.subject {
            if !subject.is_empty() {
                report.affected_subjects.insert(subject.clone());
            }
        }
        if let Some(key) = &record.key {
            report.affected_keys.insert(key.clone());
        }
        match record.operation {
            Operation::Read => report.reads += 1,
            Operation::Write => report.writes += 1,
            Operation::Delete => report.deletes += 1,
            _ => {}
        }
        if record.outcome == Outcome::Denied {
            report.denied_accesses += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit::log::{parse_chained_line, AuditLog};
    use audit::policy::FlushPolicy;
    use audit::record::AuditRecord;
    use audit::sink::MemorySink;

    fn build_trail() -> Vec<ChainedRecord> {
        let sink = MemorySink::new();
        let view = sink.share();
        let mut log = AuditLog::new(Box::new(sink), FlushPolicy::Synchronous);
        let records = vec![
            AuditRecord::new(1_000, "web", Operation::Write)
                .key("user:alice")
                .subject("alice"),
            AuditRecord::new(2_000, "rogue", Operation::Read)
                .key("user:alice")
                .subject("alice"),
            AuditRecord::new(2_500, "rogue", Operation::Read)
                .key("user:bob")
                .subject("bob"),
            AuditRecord::new(2_600, "rogue", Operation::Read)
                .key("user:carol")
                .subject("carol")
                .outcome(Outcome::Denied),
            AuditRecord::new(9_000, "web", Operation::Delete)
                .key("user:bob")
                .subject("bob"),
        ];
        for r in records {
            log.record(r).unwrap();
        }
        view.lines()
            .iter()
            .map(|l| parse_chained_line(l).unwrap())
            .collect()
    }

    #[test]
    fn report_scopes_to_the_window_and_actor() {
        let trail = build_trail();
        let window = BreachWindow {
            from_ms: 1_500,
            until_ms: 3_000,
            suspected_actor: Some("rogue".to_string()),
        };
        let report = analyze_breach(&trail, &window, 10_000).unwrap();
        assert!(report.trail_verified);
        assert_eq!(report.affected_subjects.len(), 3);
        assert_eq!(report.affected_keys.len(), 3);
        assert_eq!(report.reads, 3);
        assert_eq!(report.writes, 0);
        assert_eq!(report.denied_accesses, 1);
    }

    #[test]
    fn report_without_actor_filter_counts_everything_in_window() {
        let trail = build_trail();
        let window = BreachWindow {
            from_ms: 0,
            until_ms: 10_000,
            suspected_actor: None,
        };
        let report = analyze_breach(&trail, &window, 10_000).unwrap();
        assert_eq!(report.writes, 1);
        assert_eq!(report.deletes, 1);
        assert_eq!(report.reads, 3);
        assert_eq!(report.affected_subjects.len(), 3);
    }

    #[test]
    fn tampered_trail_is_flagged() {
        let mut trail = build_trail();
        trail[1].record.subject = Some("mallory".to_string());
        let window = BreachWindow {
            from_ms: 0,
            until_ms: 10_000,
            suspected_actor: None,
        };
        let report = analyze_breach(&trail, &window, 10_000).unwrap();
        assert!(
            !report.trail_verified,
            "evidence tampering must be visible in the report"
        );
    }

    #[test]
    fn deadline_arithmetic() {
        let window = BreachWindow {
            from_ms: 0,
            until_ms: 1_000,
            suspected_actor: None,
        };
        let report = analyze_breach(&[], &window, 2_000).unwrap();
        assert!(report.within_deadline(2_000));
        assert_eq!(
            report.time_remaining_ms(1_000 + NOTIFICATION_DEADLINE_MS),
            Some(0)
        );
        assert!(!report.within_deadline(1_001 + NOTIFICATION_DEADLINE_MS));
        assert_eq!(
            report.time_remaining_ms(2_000 + NOTIFICATION_DEADLINE_MS),
            None
        );
    }

    #[test]
    fn json_rendering_contains_the_counts() {
        let trail = build_trail();
        let window = BreachWindow {
            from_ms: 0,
            until_ms: 10_000,
            suspected_actor: Some("rogue".into()),
        };
        let json = analyze_breach(&trail, &window, 10_000).unwrap().to_json();
        assert!(json.contains("gdpr-breach-notification/v1"));
        assert!(json.contains("\"suspected_actor\":\"rogue\""));
        assert!(json.contains("\"affected_subject_count\":3"));
        assert!(json.contains("\"trail_verified\":true"));
    }
}
