//! The deadline index behind strict expiry: a hierarchical timer wheel,
//! with the original BTree index retained as a differential-testing
//! reference.
//!
//! The paper's strict (real-time) expiry needs to answer one question
//! cheaply: *which keys' deadlines have passed?* The engine originally
//! served that from a `BTreeSet<(deadline, key)>`, which costs `O(log n)`
//! per TTL insert/reschedule — so every write to a TTL'd key pays tree
//! rebalancing under the shard lock. A hierarchical timer wheel (the
//! classic Varghese & Lauck scheme, as used by kernel timers) makes the
//! same operations `O(1)`:
//!
//! * [`WHEEL_LEVELS`] levels of [`WHEEL_SLOTS`] slots each, at a base
//!   resolution of 1 ms. Level `l` spans deadlines up to `256^(l+1)` ms
//!   from the cursor (level 3 ≈ 49.7 days).
//! * Deadlines beyond the top level live in an **overflow min-heap** and
//!   fire straight from it.
//! * Advancing the cursor visits only the slots the cursor passes and
//!   **cascades** entries from coarse levels into finer ones; each entry
//!   cascades at most [`WHEEL_LEVELS`]-1 times over its lifetime.
//! * Remove/reschedule is **lazy**: the authoritative `key → generation`
//!   map is updated in `O(1)` and stale wheel entries are dropped
//!   (generation mismatch) when their slot is next visited, so no slot
//!   scan is ever needed. A compaction backstop rewrites the wheel from
//!   the live entries once the stale backlog exceeds twice the live
//!   count, bounding memory at `O(live)` even under TTL-refresh
//!   workloads (amortized `O(1)` per mutation).
//!
//! Both implementations sit behind the [`DeadlineIndex`] trait, selected
//! by [`crate::config::StoreConfig::deadline_index`]; the wheel is the
//! default, and the BTree is kept so the differential/property suites in
//! `tests/ttl_wheel_differential.rs` can pin the wheel to the original
//! semantics by comparing the fired key *sets* of every advance (the
//! BTree fires in `(deadline, key)` order, the wheel in slot order).

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::fmt;
use std::sync::Arc;

use crate::clock::UnixMillis;

/// Number of levels in the hierarchical wheel.
pub const WHEEL_LEVELS: usize = 4;

/// Slots per level (a power of two; slot index is a byte of the deadline).
pub const WHEEL_SLOTS: usize = 256;

/// log2([`WHEEL_SLOTS`]): how many deadline bits one level consumes.
const SLOT_BITS: u32 = WHEEL_SLOTS.trailing_zeros();

/// Millisecond span covered by levels `0..=level`: deltas below this fit
/// into `level`.
fn level_horizon(level: usize) -> u64 {
    1u64 << (SLOT_BITS as u64 * (level as u64 + 1))
}

/// Which [`DeadlineIndex`] implementation a store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeadlineIndexKind {
    /// The hierarchical timer wheel (`O(1)` insert/reschedule/remove).
    #[default]
    Wheel,
    /// The original `BTreeSet<(deadline, key)>` index (`O(log n)` per
    /// mutation), retained as the differential-testing reference.
    BTree,
}

impl DeadlineIndexKind {
    /// Stable lowercase label (used by `INFO`, `GDPR.STATS` and CLI flags).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DeadlineIndexKind::Wheel => "wheel",
            DeadlineIndexKind::BTree => "btree",
        }
    }

    /// Parse a CLI/config label; `None` for anything unknown.
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "wheel" => Some(DeadlineIndexKind::Wheel),
            "btree" => Some(DeadlineIndexKind::BTree),
            _ => None,
        }
    }

    /// The default index kind honoring the `GDPR_TTL_INDEX` environment
    /// variable (`wheel` or `btree`), read once per process. This is what
    /// `StoreConfig::default()` uses, so CI can run the whole test suite
    /// as a matrix over both deadline indexes without touching every test.
    #[must_use]
    pub fn from_env_or_default() -> Self {
        static FROM_ENV: std::sync::OnceLock<DeadlineIndexKind> = std::sync::OnceLock::new();
        *FROM_ENV.get_or_init(|| {
            std::env::var("GDPR_TTL_INDEX")
                .ok()
                .and_then(|label| DeadlineIndexKind::parse(label.trim()))
                .unwrap_or_default()
        })
    }
}

impl fmt::Display for DeadlineIndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` (not `write_str`) so width/alignment format specs apply.
        f.pad(self.label())
    }
}

/// Occupancy and activity counters of a deadline index (the wheel-specific
/// gauges are zero for the BTree implementation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineIndexStats {
    /// Which implementation produced these counters.
    pub kind: DeadlineIndexKind,
    /// Keys currently tracked (live deadlines).
    pub entries: u64,
    /// Deadlines registered for keys that had none.
    pub inserts: u64,
    /// Deadlines replaced for keys that already had one.
    pub reschedules: u64,
    /// Deadlines explicitly removed (`PERSIST`, `DEL`, overwrite-by-SET).
    pub removes: u64,
    /// Keys returned by [`DeadlineIndex::advance`] as expired.
    pub fired: u64,
    /// Entries moved from a coarse wheel level into a finer one.
    pub cascades: u64,
    /// Stale (removed/rescheduled) wheel entries dropped lazily.
    pub stale_dropped: u64,
    /// Entries currently parked in the far-future overflow heap.
    pub overflow_entries: u64,
    /// Entries currently in the expired-but-not-yet-collected ready list.
    pub ready_entries: u64,
    /// Entries currently stored per wheel level (including stale ones not
    /// yet dropped) — the wheel occupancy gauge.
    pub level_entries: [u64; WHEEL_LEVELS],
}

impl DeadlineIndexStats {
    /// Accumulate another index's counters (used to merge per-shard stats
    /// into one engine-wide view).
    pub fn absorb(&mut self, other: &DeadlineIndexStats) {
        self.entries += other.entries;
        self.inserts += other.inserts;
        self.reschedules += other.reschedules;
        self.removes += other.removes;
        self.fired += other.fired;
        self.cascades += other.cascades;
        self.stale_dropped += other.stale_dropped;
        self.overflow_entries += other.overflow_entries;
        self.ready_entries += other.ready_entries;
        for (mine, theirs) in self.level_entries.iter_mut().zip(other.level_entries) {
            *mine += theirs;
        }
    }
}

/// The deadline index contract shared by the wheel and the BTree: map keys
/// to absolute expiration deadlines and pop everything whose deadline has
/// passed.
///
/// Implementations own their bookkeeping; callers never tell them *where*
/// an entry currently sits. For identical histories the two
/// implementations fire identical key *sets* at every advance (the
/// property the differential suite pins down), though not necessarily in
/// the same order.
pub trait DeadlineIndex: Send + fmt::Debug {
    /// Which implementation this is.
    fn kind(&self) -> DeadlineIndexKind;

    /// Register or replace the deadline of `key` (upsert). A deadline at
    /// or before the current cursor is legal and fires on the next
    /// [`DeadlineIndex::advance`].
    fn insert(&mut self, key: &str, at: UnixMillis);

    /// Forget `key`'s deadline; a no-op if it has none.
    fn remove(&mut self, key: &str);

    /// Move the cursor to `now` and pop every key whose deadline is
    /// `<= now`. The order is implementation-defined but deterministic
    /// (the BTree fires in `(deadline, key)` order, the wheel in slot
    /// order); callers needing a canonical order sort the result. The
    /// cursor never moves backwards; an earlier `now` still collects what
    /// is already due.
    fn advance(&mut self, now: UnixMillis) -> Vec<String>;

    /// Number of keys whose deadline is `<= now` without popping them
    /// (Figure 2's overdue gauge).
    fn pending_expired(&mut self, now: UnixMillis) -> usize;

    /// Number of keys currently tracked.
    fn len(&self) -> usize;

    /// Whether no key is tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (`FLUSHALL`); cumulative counters survive.
    fn clear(&mut self);

    /// Occupancy and activity counters.
    fn stats(&self) -> DeadlineIndexStats;
}

/// Construct the configured index implementation. `start_millis` seeds the
/// wheel cursor (the engine clock's current time); the BTree ignores it.
#[must_use]
pub fn build_deadline_index(
    kind: DeadlineIndexKind,
    start_millis: UnixMillis,
) -> Box<dyn DeadlineIndex> {
    match kind {
        DeadlineIndexKind::Wheel => Box::new(TtlWheel::new(start_millis)),
        DeadlineIndexKind::BTree => Box::new(BTreeDeadlineIndex::new()),
    }
}

/// A parked wheel entry. `gen` snapshots the generation of the insert that
/// created it; the entry is live only while the map still carries the same
/// generation for the key.
#[derive(Debug, Clone)]
struct Entry {
    at: UnixMillis,
    gen: u64,
    /// Shared with the `live` map key: one allocation per insert, and
    /// refcount bumps thereafter.
    key: Arc<str>,
}

/// The hierarchical timer wheel (see the module docs for the scheme).
#[derive(Debug)]
pub struct TtlWheel {
    /// Cursor: the wheel has collected everything with `at <= cur`.
    cur: UnixMillis,
    /// `levels[l][slot]` parks entries expiring when the cursor reaches
    /// that slot of level `l`.
    levels: Vec<Vec<Vec<Entry>>>,
    /// Far-future entries (beyond the top level's horizon), fired straight
    /// from the heap.
    overflow: BinaryHeap<Reverse<(UnixMillis, u64, Arc<str>)>>,
    /// Entries already due but not yet popped by `advance`.
    ready: Vec<Entry>,
    /// Authoritative `key → generation of its newest insert`: only parked
    /// entries matching their key's current generation are real.
    live: HashMap<Arc<str>, u64>,
    next_gen: u64,
    inserts: u64,
    reschedules: u64,
    removes: u64,
    fired: u64,
    cascades: u64,
    stale_dropped: u64,
    level_entries: [u64; WHEEL_LEVELS],
}

impl TtlWheel {
    /// Create a wheel whose cursor starts at `start_millis`.
    #[must_use]
    pub fn new(start_millis: UnixMillis) -> Self {
        TtlWheel {
            cur: start_millis,
            levels: (0..WHEEL_LEVELS)
                .map(|_| (0..WHEEL_SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: BinaryHeap::new(),
            ready: Vec::new(),
            live: HashMap::new(),
            next_gen: 0,
            inserts: 0,
            reschedules: 0,
            removes: 0,
            fired: 0,
            cascades: 0,
            stale_dropped: 0,
            level_entries: [0; WHEEL_LEVELS],
        }
    }

    /// The current cursor position.
    #[must_use]
    pub fn cursor(&self) -> UnixMillis {
        self.cur
    }

    fn is_live(&self, entry: &Entry) -> bool {
        self.live.get(entry.key.as_ref()) == Some(&entry.gen)
    }

    /// Park an entry according to its distance from the cursor. Placement
    /// uses absolute deadline bits for the slot index, so an entry placed
    /// at level `l` is drained exactly when the cursor's level-`l` index
    /// reaches the deadline's.
    fn place(&mut self, entry: Entry) {
        if entry.at <= self.cur {
            self.ready.push(entry);
            return;
        }
        let delta = entry.at - self.cur;
        for level in 0..WHEEL_LEVELS {
            if delta < level_horizon(level) {
                let shift = SLOT_BITS as u64 * level as u64;
                let slot = ((entry.at >> shift) & (WHEEL_SLOTS as u64 - 1)) as usize;
                self.level_entries[level] += 1;
                self.levels[level][slot].push(entry);
                return;
            }
        }
        self.overflow
            .push(Reverse((entry.at, entry.gen, entry.key)));
    }

    /// Drain one slot: due entries go to `ready` (validated later, at
    /// collection time), not-yet-due live ones cascade into finer levels,
    /// not-yet-due stale ones are dropped.
    ///
    /// Re-placement is safe mid-sweep: an entry with `at > now` always
    /// lands in a slot whose absolute index at its (finer) level lies
    /// beyond `now`, so no slot is ever re-filled after — or before — this
    /// advance visits it.
    fn drain_slot(&mut self, level: usize, slot: usize, now: UnixMillis) {
        if self.levels[level][slot].is_empty() {
            return;
        }
        let drained = std::mem::take(&mut self.levels[level][slot]);
        self.level_entries[level] -= drained.len() as u64;
        for entry in drained {
            if entry.at <= now {
                self.ready.push(entry);
            } else if !self.is_live(&entry) {
                self.stale_dropped += 1;
            } else {
                self.cascades += 1;
                self.place(entry);
            }
        }
    }

    /// Entries currently parked anywhere in the wheel structures — live
    /// ones plus stale ones not yet dropped.
    fn parked(&self) -> u64 {
        self.level_entries.iter().sum::<u64>()
            + self.overflow.len() as u64
            + self.ready.len() as u64
    }

    /// Bound the stale backlog: lazy tombstoning alone would let a
    /// TTL-refresh workload (the same key rescheduled over and over, each
    /// time parking a new entry while the old one waits for its possibly
    /// far-future slot) grow memory with *write rate* instead of key
    /// count. Once parked entries exceed twice the live count (plus a
    /// floor covering the slot scan), rewrite the wheel from the live
    /// entries only — amortized O(1) per mutation.
    fn maybe_compact(&mut self) {
        let slack = 2 * self.live.len() as u64 + (WHEEL_LEVELS * WHEEL_SLOTS) as u64;
        if self.parked() <= slack {
            return;
        }
        let mut retained = Vec::with_capacity(self.live.len());
        for level in 0..WHEEL_LEVELS {
            for slot in 0..WHEEL_SLOTS {
                for entry in std::mem::take(&mut self.levels[level][slot]) {
                    if self.live.get(entry.key.as_ref()) == Some(&entry.gen) {
                        retained.push(entry);
                    } else {
                        self.stale_dropped += 1;
                    }
                }
            }
        }
        self.level_entries = [0; WHEEL_LEVELS];
        for Reverse((at, gen, key)) in std::mem::take(&mut self.overflow) {
            let entry = Entry { at, gen, key };
            if self.live.get(entry.key.as_ref()) == Some(&entry.gen) {
                retained.push(entry);
            } else {
                self.stale_dropped += 1;
            }
        }
        let live = &self.live;
        let mut dropped = 0u64;
        self.ready.retain(
            |entry| match live.get(entry.key.as_ref()) == Some(&entry.gen) {
                true => true,
                false => {
                    dropped += 1;
                    false
                }
            },
        );
        self.stale_dropped += dropped;
        for entry in retained {
            self.place(entry);
        }
    }

    /// Move the cursor to `now`, draining every slot it passes.
    fn cascade_to(&mut self, now: UnixMillis) {
        if now <= self.cur {
            return;
        }
        let prev = self.cur;
        self.cur = now;
        for level in 0..WHEEL_LEVELS {
            let shift = SLOT_BITS as u64 * level as u64;
            let prev_idx = prev >> shift;
            let now_idx = now >> shift;
            if now_idx == prev_idx {
                // Coarser levels share this prefix: nothing to visit.
                break;
            }
            if self.level_entries[level] == 0 {
                // Every slot of this level is empty: the cursor can pass
                // without visiting them, which makes idle ticks O(levels)
                // instead of O(slots passed).
                continue;
            }
            if now_idx - prev_idx >= WHEEL_SLOTS as u64 {
                // The cursor lapped the whole level: everything drains.
                for slot in 0..WHEEL_SLOTS {
                    self.drain_slot(level, slot, now);
                }
            } else {
                for idx in (prev_idx + 1)..=now_idx {
                    let slot = (idx & (WHEEL_SLOTS as u64 - 1)) as usize;
                    self.drain_slot(level, slot, now);
                }
            }
        }
        while let Some(Reverse((at, _, _))) = self.overflow.peek() {
            if *at > now {
                break;
            }
            let Reverse((at, gen, key)) = self.overflow.pop().expect("peeked entry");
            // Validation is deferred to collection, like slot drains.
            self.ready.push(Entry { at, gen, key });
        }
    }
}

impl DeadlineIndex for TtlWheel {
    fn kind(&self) -> DeadlineIndexKind {
        DeadlineIndexKind::Wheel
    }

    fn insert(&mut self, key: &str, at: UnixMillis) {
        self.next_gen += 1;
        let gen = self.next_gen;
        // One allocation per insert: map key and parked entry share it.
        let key: Arc<str> = Arc::from(key);
        let previous = self.live.insert(Arc::clone(&key), gen);
        if previous.is_some() {
            self.reschedules += 1;
        } else {
            self.inserts += 1;
        }
        self.place(Entry { at, gen, key });
        self.maybe_compact();
    }

    fn remove(&mut self, key: &str) {
        if self.live.remove(key).is_some() {
            // The parked entry stays behind and is dropped as stale when
            // its slot is next visited (or by the compaction backstop).
            self.removes += 1;
            self.maybe_compact();
        }
    }

    fn advance(&mut self, now: UnixMillis) -> Vec<String> {
        self.cascade_to(now);
        let mut due: Vec<String> = Vec::new();
        for entry in std::mem::take(&mut self.ready) {
            // Single-lookup validation: speculatively remove, and restore
            // the mapping in the (rare) case the entry was stale but the
            // key has a newer live deadline.
            match self.live.remove(entry.key.as_ref()) {
                Some(gen) if gen == entry.gen => {
                    self.fired += 1;
                    due.push(entry.key.to_string());
                }
                Some(newer) => {
                    self.live.insert(entry.key, newer);
                    self.stale_dropped += 1;
                }
                None => self.stale_dropped += 1,
            }
        }
        due
    }

    fn pending_expired(&mut self, now: UnixMillis) -> usize {
        self.cascade_to(now);
        // Compact the ready list while counting: stale entries would
        // otherwise inflate the gauge until the next advance.
        let live = &self.live;
        let mut dropped = 0u64;
        self.ready.retain(|entry| {
            let keep = live.get(entry.key.as_ref()) == Some(&entry.gen);
            if !keep {
                dropped += 1;
            }
            keep
        });
        self.stale_dropped += dropped;
        self.ready.len()
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn clear(&mut self) {
        for level in &mut self.levels {
            for slot in level {
                slot.clear();
            }
        }
        self.overflow.clear();
        self.ready.clear();
        self.live.clear();
        self.level_entries = [0; WHEEL_LEVELS];
    }

    fn stats(&self) -> DeadlineIndexStats {
        DeadlineIndexStats {
            kind: DeadlineIndexKind::Wheel,
            entries: self.live.len() as u64,
            inserts: self.inserts,
            reschedules: self.reschedules,
            removes: self.removes,
            fired: self.fired,
            cascades: self.cascades,
            stale_dropped: self.stale_dropped,
            overflow_entries: self.overflow.len() as u64,
            ready_entries: self.ready.len() as u64,
            level_entries: self.level_entries,
        }
    }
}

/// The original deadline index: a `BTreeSet<(deadline, key)>` plus a
/// `key → deadline` map, `O(log n)` per mutation. Kept as the semantic
/// reference the wheel is differentially tested against (and selectable
/// via [`DeadlineIndexKind::BTree`]).
#[derive(Debug, Default)]
pub struct BTreeDeadlineIndex {
    by_deadline: BTreeSet<(UnixMillis, String)>,
    deadlines: HashMap<String, UnixMillis>,
    inserts: u64,
    reschedules: u64,
    removes: u64,
    fired: u64,
}

impl BTreeDeadlineIndex {
    /// Create an empty index.
    #[must_use]
    pub fn new() -> Self {
        BTreeDeadlineIndex::default()
    }
}

impl DeadlineIndex for BTreeDeadlineIndex {
    fn kind(&self) -> DeadlineIndexKind {
        DeadlineIndexKind::BTree
    }

    fn insert(&mut self, key: &str, at: UnixMillis) {
        match self.deadlines.insert(key.to_string(), at) {
            Some(old) => {
                self.by_deadline.remove(&(old, key.to_string()));
                self.reschedules += 1;
            }
            None => self.inserts += 1,
        }
        self.by_deadline.insert((at, key.to_string()));
    }

    fn remove(&mut self, key: &str) {
        if let Some(at) = self.deadlines.remove(key) {
            self.by_deadline.remove(&(at, key.to_string()));
            self.removes += 1;
        }
    }

    fn advance(&mut self, now: UnixMillis) -> Vec<String> {
        let mut due = Vec::new();
        while let Some((at, key)) = self.by_deadline.iter().next().cloned() {
            if at > now {
                break;
            }
            self.by_deadline.remove(&(at, key.clone()));
            self.deadlines.remove(&key);
            self.fired += 1;
            due.push(key);
        }
        due
    }

    fn pending_expired(&mut self, now: UnixMillis) -> usize {
        self.by_deadline
            .iter()
            .take_while(|(at, _)| *at <= now)
            .count()
    }

    fn len(&self) -> usize {
        self.deadlines.len()
    }

    fn clear(&mut self) {
        self.by_deadline.clear();
        self.deadlines.clear();
    }

    fn stats(&self) -> DeadlineIndexStats {
        DeadlineIndexStats {
            kind: DeadlineIndexKind::BTree,
            entries: self.deadlines.len() as u64,
            inserts: self.inserts,
            reschedules: self.reschedules,
            removes: self.removes,
            fired: self.fired,
            ..DeadlineIndexStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(start: UnixMillis) -> [Box<dyn DeadlineIndex>; 2] {
        [
            build_deadline_index(DeadlineIndexKind::Wheel, start),
            build_deadline_index(DeadlineIndexKind::BTree, start),
        ]
    }

    #[test]
    fn kind_labels_roundtrip() {
        for kind in [DeadlineIndexKind::Wheel, DeadlineIndexKind::BTree] {
            assert_eq!(DeadlineIndexKind::parse(kind.label()), Some(kind));
            assert_eq!(format!("{kind}"), kind.label());
        }
        assert_eq!(DeadlineIndexKind::parse("heap"), None);
        assert_eq!(DeadlineIndexKind::default(), DeadlineIndexKind::Wheel);
    }

    fn sorted(mut keys: Vec<String>) -> Vec<String> {
        keys.sort();
        keys
    }

    #[test]
    fn fires_exactly_the_due_set() {
        for mut index in both(0) {
            index.insert("b", 50);
            index.insert("a", 50);
            index.insert("c", 10);
            index.insert("later", 1_000);
            assert_eq!(sorted(index.advance(100)), vec!["a", "b", "c"]);
            assert_eq!(index.len(), 1, "{:?}", index.kind());
            assert_eq!(index.advance(2_000), vec!["later"]);
            assert!(index.is_empty());
        }
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        for mut index in both(1_000) {
            index.insert("overdue", 10);
            index.insert("now", 1_000);
            assert_eq!(index.pending_expired(1_000), 2);
            assert_eq!(sorted(index.advance(1_000)), vec!["now", "overdue"]);
        }
    }

    #[test]
    fn reschedule_does_not_fire_stale_deadline() {
        for mut index in both(0) {
            index.insert("k", 100);
            index.insert("k", 500_000); // rescheduled far out (level 2)
            assert!(index.advance(200).is_empty(), "{:?}", index.kind());
            assert_eq!(index.len(), 1);
            assert_eq!(index.advance(500_000), vec!["k"]);
        }
    }

    #[test]
    fn reschedule_to_same_deadline_fires_once() {
        for mut index in both(0) {
            index.insert("k", 300);
            index.insert("k", 400);
            index.insert("k", 300);
            assert_eq!(index.advance(1_000), vec!["k"]);
            assert!(index.advance(2_000).is_empty());
        }
    }

    #[test]
    fn removed_key_never_fires() {
        for mut index in both(0) {
            index.insert("gone", 100);
            index.remove("gone");
            index.remove("never-there");
            assert_eq!(index.len(), 0);
            assert!(index.advance(1_000).is_empty());
        }
    }

    #[test]
    fn far_future_deadlines_live_in_overflow_and_fire() {
        let horizon = level_horizon(WHEEL_LEVELS - 1);
        let mut wheel = TtlWheel::new(0);
        wheel.insert("far", horizon + 5);
        wheel.insert("near", 5);
        assert_eq!(wheel.stats().overflow_entries, 1);
        assert_eq!(wheel.advance(10), vec!["near"]);
        assert!(wheel.advance(horizon).is_empty());
        assert_eq!(wheel.advance(horizon + 5), vec!["far"]);
        assert_eq!(wheel.stats().overflow_entries, 0);
    }

    #[test]
    fn overflow_respects_removal_and_reschedule() {
        let horizon = level_horizon(WHEEL_LEVELS - 1);
        let mut wheel = TtlWheel::new(0);
        wheel.insert("dropped", horizon + 1);
        wheel.insert("pulled-in", horizon + 1);
        wheel.remove("dropped");
        wheel.insert("pulled-in", 100); // rescheduled into the wheel proper
        assert_eq!(wheel.advance(200), vec!["pulled-in"]);
        assert!(wheel.advance(horizon + 10).is_empty());
        assert!(wheel.stats().stale_dropped >= 2);
    }

    #[test]
    fn big_jump_drains_every_level() {
        let mut wheel = TtlWheel::new(0);
        let mut expected = Vec::new();
        for level in 0..WHEEL_LEVELS {
            let at = level_horizon(level) - 3;
            let key = format!("l{level}");
            wheel.insert(&key, at);
            expected.push((at, key));
        }
        expected.sort();
        let jump = level_horizon(WHEEL_LEVELS - 1);
        let fired = sorted(wheel.advance(jump));
        let mut expected: Vec<String> = expected.into_iter().map(|(_, k)| k).collect();
        expected.sort();
        assert_eq!(fired, expected);
        assert_eq!(wheel.stats().level_entries, [0; WHEEL_LEVELS]);
    }

    #[test]
    fn small_steps_cascade_entries_down() {
        let mut wheel = TtlWheel::new(0);
        wheel.insert("k", 70_000); // 70 000 ms > level 1's 65 536 ms horizon
        assert_eq!(wheel.stats().level_entries[2], 1);
        // Stepping to within 256 ms of the deadline cascades it 2 → 1 → 0.
        let mut now = 0;
        while now < 69_900 {
            now += 100;
            assert!(wheel.advance(now).is_empty());
        }
        assert_eq!(wheel.stats().level_entries[0], 1);
        assert!(wheel.stats().cascades >= 2);
        assert_eq!(wheel.advance(70_000), vec!["k"]);
    }

    #[test]
    fn cursor_never_moves_backwards() {
        let mut wheel = TtlWheel::new(5_000);
        wheel.insert("k", 5_500);
        assert!(wheel.advance(1_000).is_empty());
        assert_eq!(wheel.cursor(), 5_000);
        assert_eq!(wheel.advance(6_000), vec!["k"]);
        assert_eq!(wheel.cursor(), 6_000);
    }

    #[test]
    fn pending_expired_counts_without_popping() {
        for mut index in both(0) {
            for i in 0..10 {
                index.insert(&format!("k{i}"), 100 + i);
            }
            assert_eq!(index.pending_expired(104), 5);
            assert_eq!(index.pending_expired(104), 5, "counting must not pop");
            assert_eq!(index.advance(104).len(), 5);
            assert_eq!(index.pending_expired(104), 0);
            assert_eq!(index.len(), 5);
        }
    }

    #[test]
    fn clear_drops_entries_but_keeps_activity_counters() {
        for mut index in both(0) {
            index.insert("a", 10);
            index.insert("b", 20);
            index.clear();
            assert!(index.is_empty());
            assert!(index.advance(1_000).is_empty());
            let stats = index.stats();
            assert_eq!(stats.entries, 0);
            assert_eq!(stats.inserts, 2);
        }
    }

    #[test]
    fn stats_track_inserts_reschedules_removes_and_fires() {
        for mut index in both(0) {
            index.insert("a", 10);
            index.insert("a", 20);
            index.insert("b", 30);
            index.remove("b");
            index.advance(100);
            let stats = index.stats();
            assert_eq!(stats.kind, index.kind());
            assert_eq!(stats.inserts, 2);
            assert_eq!(stats.reschedules, 1);
            assert_eq!(stats.removes, 1);
            assert_eq!(stats.fired, 1);
        }
    }

    #[test]
    fn stats_absorb_sums_counters() {
        let mut a = DeadlineIndexStats {
            entries: 1,
            cascades: 2,
            level_entries: [1, 0, 0, 0],
            ..DeadlineIndexStats::default()
        };
        let b = DeadlineIndexStats {
            entries: 4,
            cascades: 5,
            level_entries: [0, 2, 0, 0],
            ..DeadlineIndexStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.entries, 5);
        assert_eq!(a.cascades, 7);
        assert_eq!(a.level_entries, [1, 2, 0, 0]);
    }

    #[test]
    fn ttl_refresh_workload_keeps_parked_entries_bounded() {
        // Sliding-expiration sessions: the same keys rescheduled far into
        // the future over and over. Lazy tombstoning alone would park one
        // stale entry per refresh until the (month-out) deadline passes;
        // the compaction backstop must keep memory O(live keys).
        let mut wheel = TtlWheel::new(0);
        let month = 30 * 24 * 3_600 * 1_000u64;
        for round in 0..20_000u64 {
            for k in 0..5 {
                wheel.insert(&format!("session{k}"), month + round);
            }
        }
        let stats = wheel.stats();
        assert_eq!(stats.entries, 5);
        let parked =
            stats.level_entries.iter().sum::<u64>() + stats.overflow_entries + stats.ready_entries;
        assert!(
            parked <= 2 * stats.entries + (WHEEL_LEVELS * WHEEL_SLOTS) as u64,
            "stale refresh backlog must stay bounded, got {parked} parked"
        );
        assert!(stats.stale_dropped > 90_000, "{stats:?}");
        // Removing far-future deadlines is bounded the same way.
        for k in 0..5 {
            wheel.remove(&format!("session{k}"));
        }
        assert_eq!(wheel.len(), 0);
        assert!(wheel.advance(2 * month).is_empty());
    }

    #[test]
    fn dense_same_deadline_burst_fires_exactly_once_each() {
        for mut index in both(0) {
            for i in 0..500 {
                index.insert(&format!("k{i:03}"), 1_000);
            }
            let fired = index.advance(1_000);
            assert_eq!(fired.len(), 500);
            let mut sorted = fired.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 500, "no double fire");
            assert!(index.advance(2_000).is_empty());
        }
    }
}
