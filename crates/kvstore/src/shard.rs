//! Key → shard routing.
//!
//! The engine splits its keyspace into N independent shards (N a power of
//! two), each owning its own dictionary, expiry state and lock, so that
//! operations on different shards proceed in parallel. Routing is a seeded
//! FNV-1a hash of the key masked down to the shard count — cheap, stable
//! within a process, and uniform enough for YCSB-style key populations.

/// Routes keys to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    mask: u64,
    seed: u64,
}

/// Default hash seed (an arbitrary odd 64-bit constant). Deterministic so
/// that replay partitioning and tests are reproducible.
pub const DEFAULT_HASH_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl ShardRouter {
    /// A router over `shards` shards (rounded **up** to the next power of
    /// two; zero is treated as one).
    #[must_use]
    pub fn new(shards: usize, seed: u64) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardRouter {
            mask: shards as u64 - 1,
            seed,
        }
    }

    /// Number of shards this router distributes over.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// The hash seed this router was built with (persisted in the journal
    /// manifest so recovery can tell whether segments map 1:1 onto
    /// shards).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard owning `key`.
    #[must_use]
    pub fn shard_of(&self, key: &str) -> usize {
        (hash_key(self.seed, key) & self.mask) as usize
    }
}

/// Seeded 64-bit FNV-1a over the key bytes, finished with an avalanche mix
/// so the low bits (the ones the mask keeps) depend on every input byte.
#[must_use]
pub fn hash_key(seed: u64, key: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer.
    hash = (hash ^ (hash >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash = (hash ^ (hash >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    hash ^ (hash >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(ShardRouter::new(0, 0).shard_count(), 1);
        assert_eq!(ShardRouter::new(1, 0).shard_count(), 1);
        assert_eq!(ShardRouter::new(3, 0).shard_count(), 4);
        assert_eq!(ShardRouter::new(8, 0).shard_count(), 8);
        assert_eq!(ShardRouter::new(9, 0).shard_count(), 16);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let router = ShardRouter::new(8, DEFAULT_HASH_SEED);
        for i in 0..1_000 {
            let key = format!("user{i:08}");
            let shard = router.shard_of(&key);
            assert!(shard < 8);
            assert_eq!(
                shard,
                router.shard_of(&key),
                "routing must be deterministic"
            );
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let router = ShardRouter::new(8, DEFAULT_HASH_SEED);
        let mut counts = [0usize; 8];
        for i in 0..8_000 {
            counts[router.shard_of(&format!("user{i:012}"))] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                (700..1300).contains(&count),
                "shard {shard} holds {count} of 8000 keys — skewed routing"
            );
        }
    }

    #[test]
    fn seed_changes_the_layout() {
        let a = ShardRouter::new(8, 1);
        let b = ShardRouter::new(8, 2);
        let moved = (0..1_000)
            .filter(|i| {
                let key = format!("k{i}");
                a.shard_of(&key) != b.shard_of(&key)
            })
            .count();
        assert!(
            moved > 500,
            "different seeds should reshuffle most keys, moved {moved}"
        );
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = ShardRouter::new(1, DEFAULT_HASH_SEED);
        assert_eq!(router.shard_of("anything"), 0);
        assert_eq!(router.shard_of(""), 0);
    }
}
