//! Incremental RESP2 decoding.
//!
//! [`Decoder`] accumulates bytes as they arrive from a transport and yields
//! complete [`Frame`]s as soon as they are available — the shape a
//! streaming network server needs, and the reason the decoder keeps its own
//! buffer rather than requiring the whole message up front.

use bytes::{Buf, BytesMut};

use crate::{Frame, RespError};

/// Result alias for decoding operations.
pub type Result<T> = std::result::Result<T, RespError>;

/// Default cap on the size of a single frame accepted by [`Decoder`]
/// (64 MiB). A remote peer must not be able to make the server buffer
/// unboundedly by declaring a huge bulk length or never finishing a line.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// An incremental frame decoder.
#[derive(Debug)]
pub struct Decoder {
    buf: BytesMut,
    max_frame_bytes: usize,
}

impl Default for Decoder {
    fn default() -> Self {
        Decoder::new()
    }
}

impl Decoder {
    /// Create an empty decoder with the default frame-size limit
    /// ([`DEFAULT_MAX_FRAME_BYTES`]).
    #[must_use]
    pub fn new() -> Self {
        Decoder {
            buf: BytesMut::new(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }

    /// Create an empty decoder that rejects frames larger than
    /// `max_frame_bytes` with a protocol error.
    #[must_use]
    pub fn with_max_frame_bytes(max_frame_bytes: usize) -> Self {
        Decoder {
            buf: BytesMut::new(),
            max_frame_bytes: max_frame_bytes.max(1),
        }
    }

    /// The configured frame-size limit in bytes.
    #[must_use]
    pub fn max_frame_bytes(&self) -> usize {
        self.max_frame_bytes
    }

    /// Append newly received bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-consumed bytes.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete frame. Returns `Ok(None)` if more
    /// bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`RespError::Protocol`] on malformed input, on a frame that
    /// declares a payload larger than the configured limit, and when the
    /// buffer grows past the limit without containing a complete frame.
    /// The buffer is left untouched after an error (the connection should
    /// be dropped).
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        let mut pos = 0usize;
        match parse_frame_limited(&self.buf, &mut pos, self.max_frame_bytes)? {
            Some(frame) => {
                self.buf.advance(pos);
                Ok(Some(frame))
            }
            None if self.buf.len() > self.max_frame_bytes => Err(RespError::Protocol(format!(
                "frame exceeds the {} byte limit",
                self.max_frame_bytes
            ))),
            None => Ok(None),
        }
    }
}

/// Decode a single frame from a complete buffer.
///
/// # Errors
///
/// Returns [`RespError::Protocol`] if the buffer does not contain exactly
/// one well-formed frame.
pub fn decode_one(data: &[u8]) -> Result<Frame> {
    let mut pos = 0usize;
    match parse_frame(data, &mut pos)? {
        Some(frame) if pos == data.len() => Ok(frame),
        Some(_) => Err(RespError::Protocol(format!(
            "{} trailing bytes",
            data.len() - pos
        ))),
        None => Err(RespError::Protocol("incomplete frame".to_string())),
    }
}

/// Find the next CRLF starting at `from`; returns the index of the `\r`.
fn find_crlf(data: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i + 1 < data.len() {
        if data[i] == b'\r' && data[i + 1] == b'\n' {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn parse_line<'a>(data: &'a [u8], pos: &mut usize) -> Result<Option<&'a [u8]>> {
    match find_crlf(data, *pos) {
        Some(end) => {
            let line = &data[*pos..end];
            *pos = end + 2;
            Ok(Some(line))
        }
        None => Ok(None),
    }
}

fn parse_int(line: &[u8]) -> Result<i64> {
    std::str::from_utf8(line)
        .ok()
        .and_then(|s| s.parse::<i64>().ok())
        .ok_or_else(|| {
            RespError::Protocol(format!(
                "invalid integer {:?}",
                String::from_utf8_lossy(line)
            ))
        })
}

fn parse_frame(data: &[u8], pos: &mut usize) -> Result<Option<Frame>> {
    parse_frame_limited(data, pos, usize::MAX)
}

/// The smallest possible encoded frame (`+\r\n`) is three bytes; used to
/// bound the believable element count of an array header.
const MIN_FRAME_BYTES: usize = 3;

fn parse_frame_limited(data: &[u8], pos: &mut usize, limit: usize) -> Result<Option<Frame>> {
    if *pos >= data.len() {
        return Ok(None);
    }
    let type_byte = data[*pos];
    *pos += 1;
    match type_byte {
        b'+' => {
            Ok(parse_line(data, pos)?
                .map(|l| Frame::Simple(String::from_utf8_lossy(l).into_owned())))
        }
        b'-' => {
            Ok(parse_line(data, pos)?
                .map(|l| Frame::Error(String::from_utf8_lossy(l).into_owned())))
        }
        b':' => match parse_line(data, pos)? {
            Some(line) => Ok(Some(Frame::Integer(parse_int(line)?))),
            None => Ok(None),
        },
        b'$' => {
            let Some(line) = parse_line(data, pos)? else {
                return Ok(None);
            };
            let len = parse_int(line)?;
            if len < 0 {
                return Ok(Some(Frame::Null));
            }
            let len = len as usize;
            if len > limit {
                return Err(RespError::Protocol(format!(
                    "bulk string of {len} bytes exceeds the {limit} byte limit"
                )));
            }
            if data.len() < *pos + len + 2 {
                return Ok(None);
            }
            let payload = data[*pos..*pos + len].to_vec();
            if &data[*pos + len..*pos + len + 2] != b"\r\n" {
                return Err(RespError::Protocol(
                    "bulk string missing terminator".to_string(),
                ));
            }
            *pos += len + 2;
            Ok(Some(Frame::Bulk(payload)))
        }
        b'*' => {
            let Some(line) = parse_line(data, pos)? else {
                return Ok(None);
            };
            let count = parse_int(line)?;
            if count < 0 {
                return Ok(Some(Frame::Null));
            }
            let count = count as usize;
            // Every element needs at least MIN_FRAME_BYTES on the wire, so
            // a count this large can never fit inside the frame limit —
            // reject it before reserving any memory for it.
            if count > limit / MIN_FRAME_BYTES {
                return Err(RespError::Protocol(format!(
                    "array of {count} elements exceeds the {limit} byte limit"
                )));
            }
            // Cap the pre-allocation by what the buffered bytes could
            // plausibly hold, so a huge declared count on a short buffer
            // cannot reserve unbounded memory before parsing fails.
            let plausible = data.len().saturating_sub(*pos) / MIN_FRAME_BYTES;
            let mut items = Vec::with_capacity(count.min(plausible.max(1)));
            for _ in 0..count {
                match parse_frame_limited(data, pos, limit)? {
                    Some(frame) => items.push(frame),
                    None => return Ok(None),
                }
            }
            Ok(Some(Frame::Array(items)))
        }
        other => Err(RespError::Protocol(format!(
            "unknown type byte 0x{other:02x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_frame;

    #[test]
    fn roundtrip_all_frame_kinds() {
        let frames = vec![
            Frame::Simple("OK".into()),
            Frame::Error("ERR nope".into()),
            Frame::Integer(-12345),
            Frame::bulk("binary\r\nsafe"),
            Frame::Null,
            Frame::Array(vec![Frame::Integer(1), Frame::bulk("two"), Frame::Null]),
            Frame::Array(vec![]),
        ];
        for frame in frames {
            assert_eq!(
                decode_one(&encode_frame(&frame)).unwrap(),
                frame,
                "{frame:?}"
            );
        }
    }

    #[test]
    fn incremental_decoding_across_chunks() {
        let frame = Frame::command(["SET", "key", "a longer value to split"]);
        let bytes = encode_frame(&frame);
        let mut decoder = Decoder::new();
        for chunk in bytes.chunks(3) {
            decoder.feed(chunk);
        }
        assert_eq!(decoder.next_frame().unwrap(), Some(frame));
        assert_eq!(decoder.next_frame().unwrap(), None);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        let mut decoder = Decoder::new();
        decoder.feed(b"+OK\r\n:7\r\n$2\r\nhi\r\n");
        assert_eq!(
            decoder.next_frame().unwrap(),
            Some(Frame::Simple("OK".into()))
        );
        assert_eq!(decoder.next_frame().unwrap(), Some(Frame::Integer(7)));
        assert_eq!(decoder.next_frame().unwrap(), Some(Frame::bulk("hi")));
        assert_eq!(decoder.next_frame().unwrap(), None);
    }

    #[test]
    fn partial_frame_returns_none_until_complete() {
        let mut decoder = Decoder::new();
        decoder.feed(b"$10\r\nhello");
        assert_eq!(decoder.next_frame().unwrap(), None);
        decoder.feed(b"world\r\n");
        assert_eq!(
            decoder.next_frame().unwrap(),
            Some(Frame::bulk("helloworld"))
        );
    }

    #[test]
    fn protocol_errors() {
        assert!(decode_one(b"!bogus\r\n").is_err());
        assert!(decode_one(b":notanumber\r\n").is_err());
        assert!(decode_one(b"$3\r\nabcX\r").is_err());
        // Trailing garbage after a complete frame.
        assert!(decode_one(b"+OK\r\nextra").is_err());
        // Incomplete input to decode_one is an error (unlike the Decoder).
        assert!(decode_one(b"$10\r\nhel").is_err());
    }

    #[test]
    fn null_array_decodes_to_null() {
        assert_eq!(decode_one(b"*-1\r\n").unwrap(), Frame::Null);
        assert_eq!(decode_one(b"$-1\r\n").unwrap(), Frame::Null);
    }

    #[test]
    fn oversized_declared_bulk_is_rejected_immediately() {
        // The header alone declares a payload beyond the limit; the decoder
        // must error without waiting for (or buffering) the payload.
        let mut decoder = Decoder::with_max_frame_bytes(1024);
        decoder.feed(b"$1000000000\r\n");
        assert!(matches!(decoder.next_frame(), Err(RespError::Protocol(_))));
    }

    #[test]
    fn oversized_array_count_is_rejected_immediately() {
        let mut decoder = Decoder::with_max_frame_bytes(1024);
        decoder.feed(b"*999999999\r\n");
        assert!(matches!(decoder.next_frame(), Err(RespError::Protocol(_))));
    }

    #[test]
    fn unterminated_frame_cannot_buffer_past_the_limit() {
        // A simple string that never sends its CRLF must not make the
        // decoder accumulate bytes forever.
        let mut decoder = Decoder::with_max_frame_bytes(64);
        decoder.feed(b"+");
        decoder.feed(&[b'x'; 128]);
        assert!(matches!(decoder.next_frame(), Err(RespError::Protocol(_))));
    }

    #[test]
    fn frames_under_the_limit_still_decode() {
        let mut decoder = Decoder::with_max_frame_bytes(1024);
        assert_eq!(decoder.max_frame_bytes(), 1024);
        let frame = Frame::command(["SET", "key", "value"]);
        decoder.feed(&encode_frame(&frame));
        assert_eq!(decoder.next_frame().unwrap(), Some(frame));
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn default_limit_is_applied_by_new() {
        let decoder = Decoder::new();
        assert_eq!(decoder.max_frame_bytes(), DEFAULT_MAX_FRAME_BYTES);
        assert_eq!(
            Decoder::default().max_frame_bytes(),
            DEFAULT_MAX_FRAME_BYTES
        );
    }
}
