//! Command framing on top of RESP arrays.
//!
//! Redis clients send every command as an array of bulk strings
//! (`*3\r\n$3\r\nSET\r\n…`). [`WireCommand`] is that representation with
//! the command name normalised to upper case; the shared dispatcher (used
//! by both the simulated `netsim` server and the real TCP server) maps it
//! onto the engine's typed command set.
//!
//! [`GdprRequest`] extends the wire surface beyond plain Redis commands:
//! it gives every GDPR operation of the compliance layer (session auth,
//! grants, metadata get/set, subject rights) a `GDPR.*` command form, so
//! remote clients can exercise the full compliance surface over a socket.

use crate::{Frame, RespError};

/// A client command as it appears on the wire: a name and raw arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCommand {
    /// Upper-cased command name (`SET`, `GET`, `HGETALL`, …).
    pub name: String,
    /// Raw arguments, in order, excluding the name.
    pub args: Vec<Vec<u8>>,
}

impl WireCommand {
    /// Build a command from name and arguments.
    pub fn new(name: &str, args: Vec<Vec<u8>>) -> Self {
        WireCommand {
            name: name.to_ascii_uppercase(),
            args,
        }
    }

    /// Parse a decoded RESP frame into a command.
    ///
    /// # Errors
    ///
    /// Returns [`RespError::InvalidCommand`] if the frame is not a
    /// non-empty array of bulk strings.
    pub fn from_frame(frame: &Frame) -> Result<Self, RespError> {
        let Frame::Array(items) = frame else {
            return Err(RespError::InvalidCommand(
                "command must be an array".to_string(),
            ));
        };
        if items.is_empty() {
            return Err(RespError::InvalidCommand("empty command array".to_string()));
        }
        let mut parts = Vec::with_capacity(items.len());
        for item in items {
            match item {
                Frame::Bulk(b) => parts.push(b.clone()),
                Frame::Simple(s) => parts.push(s.clone().into_bytes()),
                other => {
                    return Err(RespError::InvalidCommand(format!(
                        "command arguments must be bulk strings, got {other:?}"
                    )))
                }
            }
        }
        let name_bytes = parts.remove(0);
        let name = String::from_utf8(name_bytes).map_err(|_| {
            RespError::InvalidCommand("command name is not valid utf-8".to_string())
        })?;
        Ok(WireCommand {
            name: name.to_ascii_uppercase(),
            args: parts,
        })
    }

    /// Encode the command back into a RESP array frame.
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        let mut items = Vec::with_capacity(self.args.len() + 1);
        items.push(Frame::Bulk(self.name.clone().into_bytes()));
        items.extend(self.args.iter().cloned().map(Frame::Bulk));
        Frame::Array(items)
    }

    /// Number of arguments (excluding the command name).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Argument `i` interpreted as UTF-8.
    ///
    /// # Errors
    ///
    /// Returns [`RespError::InvalidCommand`] if the argument is missing or
    /// not valid UTF-8.
    pub fn arg_str(&self, i: usize) -> Result<&str, RespError> {
        let bytes = self.args.get(i).ok_or_else(|| {
            RespError::InvalidCommand(format!("{} missing argument {i}", self.name))
        })?;
        std::str::from_utf8(bytes).map_err(|_| {
            RespError::InvalidCommand(format!("{} argument {i} is not utf-8", self.name))
        })
    }

    /// Argument `i` interpreted as an unsigned integer.
    ///
    /// # Errors
    ///
    /// Returns [`RespError::InvalidCommand`] if the argument is missing or
    /// not a number.
    pub fn arg_u64(&self, i: usize) -> Result<u64, RespError> {
        self.arg_str(i)?.parse::<u64>().map_err(|_| {
            RespError::InvalidCommand(format!("{} argument {i} is not an integer", self.name))
        })
    }

    /// Raw bytes of argument `i`.
    ///
    /// # Errors
    ///
    /// Returns [`RespError::InvalidCommand`] if the argument is missing.
    pub fn arg_bytes(&self, i: usize) -> Result<&[u8], RespError> {
        self.args
            .get(i)
            .map(Vec::as_slice)
            .ok_or_else(|| RespError::InvalidCommand(format!("{} missing argument {i}", self.name)))
    }

    /// The first argument upper-cased — the subcommand of container
    /// commands like `SLOWLOG GET` / `SLOWLOG RESET`.
    ///
    /// # Errors
    ///
    /// Returns [`RespError::InvalidCommand`] if the argument is missing or
    /// not valid UTF-8.
    pub fn subcommand(&self) -> Result<String, RespError> {
        self.arg_str(0).map(str::to_ascii_uppercase)
    }
}

/// The GDPR operations expressible on the wire, as `GDPR.*` commands.
///
/// Multi-valued purpose lists travel as one comma-separated argument;
/// values are raw bulk strings. [`GdprRequest::to_wire`] and
/// [`GdprRequest::from_wire`] round-trip, so client and server agree on
/// the encoding by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GdprRequest {
    /// `GDPR.AUTH actor purpose` — bind this connection to an access
    /// context (actor + declared processing purpose).
    Auth {
        /// The acting entity.
        actor: String,
        /// The declared processing purpose.
        purpose: String,
    },
    /// `GDPR.GRANT actor purpose` — install an access grant (Article 25).
    Grant {
        /// The acting entity being granted access.
        actor: String,
        /// The purpose the grant covers.
        purpose: String,
    },
    /// `GDPR.REVOKE actor purpose` — revoke every matching grant.
    Revoke {
        /// The acting entity whose grants are revoked.
        actor: String,
        /// The purpose whose grants are revoked.
        purpose: String,
    },
    /// `GDPR.PUT key subject purposes value [ttl_ms]` — store personal
    /// data together with its metadata in one round trip.
    Put {
        /// Key to write.
        key: String,
        /// The data subject the value is about.
        subject: String,
        /// Whitelisted processing purposes.
        purposes: Vec<String>,
        /// The value to store.
        value: Vec<u8>,
        /// Optional retention TTL in milliseconds.
        ttl_ms: Option<u64>,
    },
    /// `GDPR.GETMETA key` — read the metadata shadow record of a key.
    GetMeta {
        /// Key whose metadata is read.
        key: String,
    },
    /// `GDPR.SETMETA key subject purposes [ttl_ms]` — replace the
    /// metadata of an existing key.
    SetMeta {
        /// Key whose metadata is replaced.
        key: String,
        /// The (possibly new) data subject.
        subject: String,
        /// Whitelisted processing purposes.
        purposes: Vec<String>,
        /// Optional retention TTL in milliseconds.
        ttl_ms: Option<u64>,
    },
    /// `GDPR.KEYSOF subject` — every key owned by a subject (Article 15
    /// lookup through the metadata index).
    KeysOf {
        /// The data subject.
        subject: String,
    },
    /// `GDPR.ERASE subject` — the right to be forgotten (Article 17).
    Erase {
        /// The data subject whose keys are erased.
        subject: String,
    },
    /// `GDPR.EXPORT subject [CURSOR c [COUNT n]]` — the right to data
    /// portability (Article 20).
    ///
    /// Without `CURSOR` the reply is one bulk string holding the whole
    /// machine-readable JSON export. With `CURSOR` the export is paged:
    /// `CURSOR 0` starts it, the reply is a two-element array
    /// `[next_cursor, chunk]`, and the client resends the returned cursor
    /// until it reads `0`. Concatenating the chunks in order yields
    /// exactly the monolithic document; `COUNT` bounds the subject keys
    /// consumed per page (server default when omitted).
    Export {
        /// The data subject whose data is exported.
        subject: String,
        /// Paged form: the resumption cursor token (`"0"` = first page).
        /// `None` selects the monolithic single-reply form.
        cursor: Option<String>,
        /// Paged form: maximum subject keys consumed by this page.
        count: Option<u64>,
    },
    /// `GDPR.OBJECT subject purpose` — record an objection (Article 21).
    Object {
        /// The data subject objecting.
        subject: String,
        /// The purpose objected to.
        purpose: String,
    },
    /// `GDPR.STATS` — compliance-layer counters.
    Stats,
}

/// Join a purpose list into its one-argument wire form.
fn purposes_to_arg(purposes: &[String]) -> Vec<u8> {
    purposes.join(",").into_bytes()
}

/// Split the one-argument wire form back into a purpose list.
fn purposes_from_arg(arg: &str) -> Vec<String> {
    arg.split(',')
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect()
}

impl GdprRequest {
    /// Whether a command name belongs to the GDPR wire surface.
    #[must_use]
    pub fn is_gdpr_command(name: &str) -> bool {
        name.starts_with("GDPR.")
    }

    /// Parse a [`WireCommand`] into a GDPR request.
    ///
    /// Returns `None` when the command is not a `GDPR.*` command at all
    /// (the caller should fall through to the plain Redis surface).
    ///
    /// # Errors
    ///
    /// Returns [`RespError::InvalidCommand`] (inside `Some`) for a
    /// `GDPR.*` command with an unknown name, wrong arity or malformed
    /// arguments.
    pub fn from_wire(cmd: &WireCommand) -> Option<Result<Self, RespError>> {
        if !Self::is_gdpr_command(&cmd.name) {
            return None;
        }
        Some(Self::parse_gdpr(cmd))
    }

    fn parse_gdpr(cmd: &WireCommand) -> Result<Self, RespError> {
        let arity = |need: &str| {
            RespError::InvalidCommand(format!(
                "wrong number of arguments for '{}' (usage: {} {need})",
                cmd.name, cmd.name
            ))
        };
        let request = match cmd.name.as_str() {
            "GDPR.AUTH" | "GDPR.GRANT" | "GDPR.REVOKE" => {
                if cmd.arity() != 2 {
                    return Err(arity("actor purpose"));
                }
                let actor = cmd.arg_str(0)?.to_string();
                let purpose = cmd.arg_str(1)?.to_string();
                match cmd.name.as_str() {
                    "GDPR.AUTH" => GdprRequest::Auth { actor, purpose },
                    "GDPR.GRANT" => GdprRequest::Grant { actor, purpose },
                    _ => GdprRequest::Revoke { actor, purpose },
                }
            }
            "GDPR.PUT" => {
                if cmd.arity() != 4 && cmd.arity() != 5 {
                    return Err(arity("key subject purposes value [ttl_ms]"));
                }
                GdprRequest::Put {
                    key: cmd.arg_str(0)?.to_string(),
                    subject: cmd.arg_str(1)?.to_string(),
                    purposes: purposes_from_arg(cmd.arg_str(2)?),
                    value: cmd.arg_bytes(3)?.to_vec(),
                    ttl_ms: if cmd.arity() == 5 {
                        Some(cmd.arg_u64(4)?)
                    } else {
                        None
                    },
                }
            }
            "GDPR.GETMETA" => {
                if cmd.arity() != 1 {
                    return Err(arity("key"));
                }
                GdprRequest::GetMeta {
                    key: cmd.arg_str(0)?.to_string(),
                }
            }
            "GDPR.SETMETA" => {
                if cmd.arity() != 3 && cmd.arity() != 4 {
                    return Err(arity("key subject purposes [ttl_ms]"));
                }
                GdprRequest::SetMeta {
                    key: cmd.arg_str(0)?.to_string(),
                    subject: cmd.arg_str(1)?.to_string(),
                    purposes: purposes_from_arg(cmd.arg_str(2)?),
                    ttl_ms: if cmd.arity() == 4 {
                        Some(cmd.arg_u64(3)?)
                    } else {
                        None
                    },
                }
            }
            "GDPR.KEYSOF" | "GDPR.ERASE" => {
                if cmd.arity() != 1 {
                    return Err(arity("subject"));
                }
                let subject = cmd.arg_str(0)?.to_string();
                match cmd.name.as_str() {
                    "GDPR.KEYSOF" => GdprRequest::KeysOf { subject },
                    _ => GdprRequest::Erase { subject },
                }
            }
            "GDPR.EXPORT" => {
                if cmd.arity() != 1 && cmd.arity() != 3 && cmd.arity() != 5 {
                    return Err(arity("subject [CURSOR cursor [COUNT n]]"));
                }
                let subject = cmd.arg_str(0)?.to_string();
                let mut cursor = None;
                let mut count = None;
                if cmd.arity() >= 3 {
                    if !cmd.arg_str(1)?.eq_ignore_ascii_case("CURSOR") {
                        return Err(arity("subject [CURSOR cursor [COUNT n]]"));
                    }
                    cursor = Some(cmd.arg_str(2)?.to_string());
                }
                if cmd.arity() == 5 {
                    if !cmd.arg_str(3)?.eq_ignore_ascii_case("COUNT") {
                        return Err(arity("subject [CURSOR cursor [COUNT n]]"));
                    }
                    count = Some(cmd.arg_u64(4)?);
                }
                GdprRequest::Export {
                    subject,
                    cursor,
                    count,
                }
            }
            "GDPR.OBJECT" => {
                if cmd.arity() != 2 {
                    return Err(arity("subject purpose"));
                }
                GdprRequest::Object {
                    subject: cmd.arg_str(0)?.to_string(),
                    purpose: cmd.arg_str(1)?.to_string(),
                }
            }
            "GDPR.STATS" => {
                if cmd.arity() != 0 {
                    return Err(arity(""));
                }
                GdprRequest::Stats
            }
            other => {
                return Err(RespError::InvalidCommand(format!(
                    "unknown GDPR command '{other}'"
                )))
            }
        };
        Ok(request)
    }

    /// Encode the request as a [`WireCommand`] ready for transmission.
    #[must_use]
    pub fn to_wire(&self) -> WireCommand {
        match self {
            GdprRequest::Auth { actor, purpose } => WireCommand::new(
                "GDPR.AUTH",
                vec![actor.clone().into_bytes(), purpose.clone().into_bytes()],
            ),
            GdprRequest::Grant { actor, purpose } => WireCommand::new(
                "GDPR.GRANT",
                vec![actor.clone().into_bytes(), purpose.clone().into_bytes()],
            ),
            GdprRequest::Revoke { actor, purpose } => WireCommand::new(
                "GDPR.REVOKE",
                vec![actor.clone().into_bytes(), purpose.clone().into_bytes()],
            ),
            GdprRequest::Put {
                key,
                subject,
                purposes,
                value,
                ttl_ms,
            } => {
                let mut args = vec![
                    key.clone().into_bytes(),
                    subject.clone().into_bytes(),
                    purposes_to_arg(purposes),
                    value.clone(),
                ];
                if let Some(ttl) = ttl_ms {
                    args.push(ttl.to_string().into_bytes());
                }
                WireCommand::new("GDPR.PUT", args)
            }
            GdprRequest::GetMeta { key } => {
                WireCommand::new("GDPR.GETMETA", vec![key.clone().into_bytes()])
            }
            GdprRequest::SetMeta {
                key,
                subject,
                purposes,
                ttl_ms,
            } => {
                let mut args = vec![
                    key.clone().into_bytes(),
                    subject.clone().into_bytes(),
                    purposes_to_arg(purposes),
                ];
                if let Some(ttl) = ttl_ms {
                    args.push(ttl.to_string().into_bytes());
                }
                WireCommand::new("GDPR.SETMETA", args)
            }
            GdprRequest::KeysOf { subject } => {
                WireCommand::new("GDPR.KEYSOF", vec![subject.clone().into_bytes()])
            }
            GdprRequest::Erase { subject } => {
                WireCommand::new("GDPR.ERASE", vec![subject.clone().into_bytes()])
            }
            GdprRequest::Export {
                subject,
                cursor,
                count,
            } => {
                let mut args = vec![subject.clone().into_bytes()];
                if let Some(cursor) = cursor {
                    args.push(b"CURSOR".to_vec());
                    args.push(cursor.clone().into_bytes());
                    if let Some(count) = count {
                        args.push(b"COUNT".to_vec());
                        args.push(count.to_string().into_bytes());
                    }
                }
                WireCommand::new("GDPR.EXPORT", args)
            }
            GdprRequest::Object { subject, purpose } => WireCommand::new(
                "GDPR.OBJECT",
                vec![subject.clone().into_bytes(), purpose.clone().into_bytes()],
            ),
            GdprRequest::Stats => WireCommand::new("GDPR.STATS", Vec::new()),
        }
    }

    /// Encode the request directly into a RESP frame.
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        self.to_wire().to_frame()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_command() {
        let frame = Frame::command(["set", "key", "value"]);
        let cmd = WireCommand::from_frame(&frame).unwrap();
        assert_eq!(cmd.name, "SET");
        assert_eq!(cmd.arity(), 2);
        assert_eq!(cmd.arg_str(0).unwrap(), "key");
        assert_eq!(cmd.arg_bytes(1).unwrap(), b"value");
    }

    #[test]
    fn roundtrip_to_frame() {
        let cmd = WireCommand::new("hset", vec![b"h".to_vec(), b"f".to_vec(), b"v".to_vec()]);
        let frame = cmd.to_frame();
        let parsed = WireCommand::from_frame(&frame).unwrap();
        assert_eq!(parsed, cmd);
        assert_eq!(parsed.name, "HSET");
    }

    #[test]
    fn numeric_arguments() {
        let cmd = WireCommand::new("PEXPIRE", vec![b"k".to_vec(), b"5000".to_vec()]);
        assert_eq!(cmd.arg_u64(1).unwrap(), 5000);
        assert!(cmd.arg_u64(0).is_err(), "non-numeric argument");
        assert!(cmd.arg_u64(5).is_err(), "missing argument");
    }

    #[test]
    fn rejects_non_array_and_empty() {
        assert!(WireCommand::from_frame(&Frame::Integer(1)).is_err());
        assert!(WireCommand::from_frame(&Frame::Array(vec![])).is_err());
        assert!(WireCommand::from_frame(&Frame::Array(vec![Frame::Integer(3)])).is_err());
    }

    #[test]
    fn simple_string_arguments_accepted() {
        let frame = Frame::Array(vec![Frame::Simple("PING".into())]);
        let cmd = WireCommand::from_frame(&frame).unwrap();
        assert_eq!(cmd.name, "PING");
        assert_eq!(cmd.arity(), 0);
    }

    fn all_gdpr_requests() -> Vec<GdprRequest> {
        vec![
            GdprRequest::Auth {
                actor: "app".into(),
                purpose: "billing".into(),
            },
            GdprRequest::Grant {
                actor: "app".into(),
                purpose: "billing".into(),
            },
            GdprRequest::Revoke {
                actor: "app".into(),
                purpose: "billing".into(),
            },
            GdprRequest::Put {
                key: "user:alice:email".into(),
                subject: "alice".into(),
                purposes: vec!["billing".into(), "analytics".into()],
                value: b"alice@example.com".to_vec(),
                ttl_ms: Some(60_000),
            },
            GdprRequest::Put {
                key: "k".into(),
                subject: "bob".into(),
                purposes: vec!["billing".into()],
                value: b"\x00binary\r\n".to_vec(),
                ttl_ms: None,
            },
            GdprRequest::GetMeta { key: "k".into() },
            GdprRequest::SetMeta {
                key: "k".into(),
                subject: "carol".into(),
                purposes: vec!["ops".into()],
                ttl_ms: Some(5),
            },
            GdprRequest::KeysOf {
                subject: "alice".into(),
            },
            GdprRequest::Erase {
                subject: "alice".into(),
            },
            GdprRequest::Export {
                subject: "alice".into(),
                cursor: None,
                count: None,
            },
            GdprRequest::Export {
                subject: "alice".into(),
                cursor: Some("0".into()),
                count: None,
            },
            GdprRequest::Export {
                subject: "alice".into(),
                cursor: Some("v2:17:6b6579".into()),
                count: Some(64),
            },
            GdprRequest::Object {
                subject: "alice".into(),
                purpose: "marketing".into(),
            },
            GdprRequest::Stats,
        ]
    }

    #[test]
    fn gdpr_requests_roundtrip_through_the_wire_form() {
        for request in all_gdpr_requests() {
            let wire = request.to_wire();
            assert!(GdprRequest::is_gdpr_command(&wire.name), "{wire:?}");
            let reparsed = GdprRequest::from_wire(&wire)
                .expect("GDPR command recognised")
                .expect("GDPR command parses");
            assert_eq!(reparsed, request);
            // And through a full frame encode/parse cycle.
            let cmd = WireCommand::from_frame(&request.to_frame()).unwrap();
            assert_eq!(GdprRequest::from_wire(&cmd).unwrap().unwrap(), request);
        }
    }

    #[test]
    fn non_gdpr_commands_fall_through() {
        let cmd = WireCommand::new("SET", vec![b"k".to_vec(), b"v".to_vec()]);
        assert!(GdprRequest::from_wire(&cmd).is_none());
        assert!(!GdprRequest::is_gdpr_command("GET"));
    }

    #[test]
    fn gdpr_parse_errors() {
        // Unknown GDPR command.
        let cmd = WireCommand::new("GDPR.NOPE", vec![]);
        assert!(GdprRequest::from_wire(&cmd).unwrap().is_err());
        // Wrong arity.
        let cmd = WireCommand::new("GDPR.AUTH", vec![b"app".to_vec()]);
        assert!(GdprRequest::from_wire(&cmd).unwrap().is_err());
        let cmd = WireCommand::new("GDPR.STATS", vec![b"extra".to_vec()]);
        assert!(GdprRequest::from_wire(&cmd).unwrap().is_err());
        // Bad TTL argument.
        let cmd = WireCommand::new(
            "GDPR.PUT",
            vec![
                b"k".to_vec(),
                b"s".to_vec(),
                b"p".to_vec(),
                b"v".to_vec(),
                b"soon".to_vec(),
            ],
        );
        assert!(GdprRequest::from_wire(&cmd).unwrap().is_err());
    }

    #[test]
    fn paged_export_parse_errors() {
        // Wrong keyword in the CURSOR slot.
        let cmd = WireCommand::new(
            "GDPR.EXPORT",
            vec![b"alice".to_vec(), b"PAGE".to_vec(), b"0".to_vec()],
        );
        assert!(GdprRequest::from_wire(&cmd).unwrap().is_err());
        // COUNT requires CURSOR first (arity 3 with COUNT keyword fails).
        let cmd = WireCommand::new(
            "GDPR.EXPORT",
            vec![b"alice".to_vec(), b"COUNT".to_vec(), b"10".to_vec()],
        );
        assert!(GdprRequest::from_wire(&cmd).unwrap().is_err());
        // Non-numeric COUNT.
        let cmd = WireCommand::new(
            "GDPR.EXPORT",
            vec![
                b"alice".to_vec(),
                b"CURSOR".to_vec(),
                b"0".to_vec(),
                b"COUNT".to_vec(),
                b"many".to_vec(),
            ],
        );
        assert!(GdprRequest::from_wire(&cmd).unwrap().is_err());
        // Dangling arity (4 args).
        let cmd = WireCommand::new(
            "GDPR.EXPORT",
            vec![
                b"alice".to_vec(),
                b"CURSOR".to_vec(),
                b"0".to_vec(),
                b"COUNT".to_vec(),
            ],
        );
        assert!(GdprRequest::from_wire(&cmd).unwrap().is_err());
        // Keywords are case-insensitive.
        let cmd = WireCommand::new(
            "GDPR.EXPORT",
            vec![b"alice".to_vec(), b"cursor".to_vec(), b"0".to_vec()],
        );
        assert_eq!(
            GdprRequest::from_wire(&cmd).unwrap().unwrap(),
            GdprRequest::Export {
                subject: "alice".into(),
                cursor: Some("0".into()),
                count: None,
            }
        );
    }

    #[test]
    fn empty_purpose_list_roundtrips() {
        let request = GdprRequest::SetMeta {
            key: "k".into(),
            subject: "s".into(),
            purposes: Vec::new(),
            ttl_ms: None,
        };
        let reparsed = GdprRequest::from_wire(&request.to_wire()).unwrap().unwrap();
        assert_eq!(reparsed, request);
    }
}
