//! Hash chaining for tamper-evident audit trails.
//!
//! Article 5(2) puts the burden of *demonstrating* compliance on the
//! controller, which is only convincing if the evidence itself cannot be
//! silently edited. Each record's digest therefore folds in the digest of
//! its predecessor; [`verify_chain`] re-walks the trail and reports the
//! first break.

use gdpr_crypto::sha256::{to_hex, Sha256};

use crate::record::AuditRecord;
use crate::{AuditError, Result};

/// Hex-encoded SHA-256 digest.
pub type ChainDigest = String;

/// The digest that seeds an empty chain.
#[must_use]
pub fn genesis_digest() -> ChainDigest {
    to_hex(&Sha256::digest(b"gdpr-audit-chain-genesis"))
}

/// Compute the chained digest of `record` given its predecessor's digest.
#[must_use]
pub fn chain_digest(previous: &str, record: &AuditRecord) -> ChainDigest {
    chain_digest_line(previous, &record.to_line())
}

/// Compute the chained digest of an already-serialized record line.
///
/// The log writer serializes each record exactly once and feeds the same
/// line to the chain and the sink; `line` must be the output of
/// [`AuditRecord::to_line`] for the digest to match [`chain_digest`].
#[must_use]
pub fn chain_digest_line(previous: &str, line: &str) -> ChainDigest {
    let mut hasher = Sha256::new();
    hasher.update(previous.as_bytes());
    hasher.update(b"\n");
    hasher.update(line.as_bytes());
    to_hex(&hasher.finalize())
}

/// A chained record as persisted: the record plus its digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainedRecord {
    /// The audit record itself.
    pub record: AuditRecord,
    /// The digest of this record chained onto its predecessor.
    pub digest: ChainDigest,
}

/// An incremental chain builder used by the log writer.
#[derive(Debug, Clone)]
pub struct ChainState {
    tip: ChainDigest,
    length: u64,
}

impl Default for ChainState {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainState {
    /// Start a fresh chain.
    #[must_use]
    pub fn new() -> Self {
        ChainState {
            tip: genesis_digest(),
            length: 0,
        }
    }

    /// Resume a chain from a known tip (e.g. after reopening a trail file).
    #[must_use]
    pub fn resume(tip: ChainDigest, length: u64) -> Self {
        ChainState { tip, length }
    }

    /// Current tip digest.
    #[must_use]
    pub fn tip(&self) -> &str {
        &self.tip
    }

    /// Number of records folded into the chain.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.length
    }

    /// Whether the chain is still at genesis.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.length == 0
    }

    /// Fold a record into the chain, returning its digest.
    pub fn append(&mut self, record: &AuditRecord) -> ChainDigest {
        self.append_line(&record.to_line())
    }

    /// Fold an already-serialized record line into the chain.
    ///
    /// Byte-identical to [`Self::append`] when `line` came from
    /// [`AuditRecord::to_line`]; lets the writer serialize once for both
    /// the chain and the sink.
    pub fn append_line(&mut self, line: &str) -> ChainDigest {
        let digest = chain_digest_line(&self.tip, line);
        self.tip = digest.clone();
        self.length += 1;
        digest
    }
}

/// Verify that a sequence of chained records is intact, returning the tip.
///
/// # Errors
///
/// Returns [`AuditError::ChainBroken`] at the first record whose digest
/// does not match.
pub fn verify_chain(records: &[ChainedRecord]) -> Result<ChainDigest> {
    let mut expected = genesis_digest();
    for chained in records {
        let digest = chain_digest(&expected, &chained.record);
        if digest != chained.digest {
            return Err(AuditError::ChainBroken {
                at_sequence: chained.record.sequence,
            });
        }
        expected = digest;
    }
    Ok(expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AuditRecord, Operation};

    fn record(seq: u64) -> AuditRecord {
        let mut r = AuditRecord::new(1_000 + seq, "tester", Operation::Write).key("k");
        r.sequence = seq;
        r
    }

    fn build_chain(n: u64) -> Vec<ChainedRecord> {
        let mut state = ChainState::new();
        (0..n)
            .map(|i| {
                let r = record(i);
                let digest = state.append(&r);
                ChainedRecord { record: r, digest }
            })
            .collect()
    }

    #[test]
    fn chain_builds_and_verifies() {
        let chain = build_chain(10);
        let tip = verify_chain(&chain).unwrap();
        assert_eq!(tip, chain.last().unwrap().digest);
        assert!(verify_chain(&[]).is_ok());
    }

    #[test]
    fn tampering_with_a_record_breaks_the_chain() {
        let mut chain = build_chain(10);
        chain[4].record.detail = "falsified".to_string();
        match verify_chain(&chain) {
            Err(AuditError::ChainBroken { at_sequence }) => assert_eq!(at_sequence, 4),
            other => panic!("expected ChainBroken, got {other:?}"),
        }
    }

    #[test]
    fn removing_a_record_breaks_the_chain() {
        let mut chain = build_chain(10);
        chain.remove(3);
        assert!(verify_chain(&chain).is_err());
    }

    #[test]
    fn reordering_breaks_the_chain() {
        let mut chain = build_chain(5);
        chain.swap(1, 2);
        assert!(verify_chain(&chain).is_err());
    }

    #[test]
    fn resume_produces_identical_digests() {
        let full = build_chain(6);
        // Rebuild the last 3 records from a resumed state.
        let mut resumed = ChainState::resume(full[2].digest.clone(), 3);
        for (i, expected) in full.iter().enumerate().skip(3) {
            let digest = resumed.append(&record(i as u64));
            assert_eq!(digest, expected.digest);
        }
        assert_eq!(resumed.len(), 6);
        assert!(!resumed.is_empty());
    }

    #[test]
    fn genesis_is_stable() {
        assert_eq!(genesis_digest(), genesis_digest());
        assert_eq!(genesis_digest().len(), 64);
    }
}
