//! The RESP2 TCP front-end: one listener, two interchangeable transports.
//!
//! * [`Transport::Reactor`] (default) — the event-driven connection layer
//!   in [`crate::reactor`]: a single readiness-polling thread owns the
//!   listener and every non-blocking connection socket, and a fixed
//!   worker pool executes [`Dispatcher`] batches. Thousands of mostly
//!   idle connections cost one registered descriptor each instead of one
//!   OS thread each.
//! * [`Transport::Threads`] — the classic Redis-era shape kept as a
//!   baseline and fallback: one accept thread, one OS thread per
//!   connection, blocking reads with a short poll timeout so every
//!   thread notices the shutdown flag promptly.
//!
//! Both transports share [`ServerConfig`], the connection counters on the
//! dispatcher (`# Clients` in `INFO`), pipelining (each read drains the
//! incremental [`Decoder`] completely and the whole batch of replies is
//! written back together), the idle-timeout rule (measured from the last
//! *complete* request frame, so a byte-trickling client cannot hold a
//! slot open), and the shutdown protocol:
//! [`TcpServerHandle::request_shutdown`] raises a flag, the transport
//! answers every request whose bytes already reached the server, then
//! closes. [`TcpServerHandle::shutdown`] joins all transport threads.
//!
//! The transport is selected by [`ServerConfig::transport`], whose
//! default honors the `GDPR_TRANSPORT` environment variable
//! (`reactor`/`threads`) — which is how the integration suites run
//! unmodified against both implementations.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use resp::decode::Decoder;
use resp::encode::encode_frame;
use resp::Frame;

use crate::dispatch::{ClientStatsCells, Dispatcher, Session};

/// Which connection layer serves the listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Event-driven reactor + worker pool (see [`crate::reactor`]).
    #[default]
    Reactor,
    /// One OS thread per connection (the original transport).
    Threads,
}

impl Transport {
    /// Parse a transport label (`reactor` / `threads`).
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "reactor" | "epoll" | "event" => Some(Transport::Reactor),
            "threads" | "thread" => Some(Transport::Threads),
            _ => None,
        }
    }

    /// The default transport, honoring the `GDPR_TRANSPORT` environment
    /// variable so whole test suites can be pointed at either
    /// implementation without touching code.
    #[must_use]
    pub fn from_env_or_default() -> Self {
        std::env::var("GDPR_TRANSPORT")
            .ok()
            .as_deref()
            .and_then(Transport::parse)
            .unwrap_or_default()
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transport::Reactor => write!(f, "reactor"),
            Transport::Threads => write!(f, "threads"),
        }
    }
}

/// Tunables of the TCP front-end, shared by both transports.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The connection layer to serve with (default: `GDPR_TRANSPORT` env
    /// var, else the reactor).
    pub transport: Transport,
    /// Maximum concurrently served connections; further clients receive a
    /// final `-ERR max connections reached` frame and are disconnected.
    /// `0` means unlimited (useful on the reactor, whose per-connection
    /// cost is a registered descriptor rather than an OS thread).
    pub max_connections: usize,
    /// Worker threads executing dispatcher batches on the reactor
    /// transport; `0` sizes the pool automatically as
    /// `min(available cores, engine shards)`.
    pub workers: usize,
    /// Drop a connection after this long without receiving a complete
    /// request frame (partial frames do not count — see the slow-loris
    /// tests).
    pub read_timeout: Duration,
    /// Socket write timeout for replies.
    pub write_timeout: Duration,
    /// Largest request frame accepted before the connection is dropped
    /// with a protocol error (see [`resp::decode::Decoder`]).
    pub max_frame_bytes: usize,
    /// How often blocked reads (threads transport) or the event loop
    /// (reactor) wake up to check the shutdown flag.
    pub poll_interval: Duration,
    /// Per-connection reply buffers are reused across pipelined batches
    /// and shrunk back to this capacity after a larger reply (e.g. a big
    /// `GDPR.EXPORT`) so one burst does not pin memory forever.
    pub buffer_cap_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            transport: Transport::from_env_or_default(),
            max_connections: 1024,
            workers: 0,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame_bytes: 8 * 1024 * 1024,
            poll_interval: Duration::from_millis(25),
            buffer_cap_bytes: 64 * 1024,
        }
    }
}

/// Counters describing transport-level activity (the dispatcher keeps the
/// request/error counters). Backed by the dispatcher's shared
/// [`crate::dispatch::ClientStats`] cells, so both transports report
/// through the same counters that `INFO` / `GDPR.STATS` surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Connections accepted and served.
    pub accepted: u64,
    /// Connections refused because the limit was reached.
    pub rejected: u64,
    /// Connections currently open.
    pub active: usize,
}

/// A running TCP server over either transport.
///
/// Dropping the handle requests shutdown but does not wait for the
/// threads; call [`TcpServerHandle::shutdown`] for a clean join.
pub struct TcpServer {
    backend: Backend,
}

enum Backend {
    Threads(ThreadsServer),
    Reactor(crate::reactor::ReactorServer),
}

/// Public alias: the value returned by [`TcpServer::bind`] acts as the
/// handle to the running server.
pub type TcpServerHandle = TcpServer;

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("addr", &self.local_addr())
            .field("transport", &self.transport())
            .field("active", &self.transport_stats().active)
            .finish()
    }
}

impl TcpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// the dispatcher's engine on [`ServerConfig::transport`].
    ///
    /// # Errors
    ///
    /// Returns the bind/listen error (or, on the reactor, the poller
    /// creation error).
    pub fn bind(
        dispatcher: Dispatcher,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<TcpServerHandle> {
        let listener = TcpListener::bind(addr)?;
        dispatcher.metrics().set_transport(match config.transport {
            Transport::Threads => "threads",
            Transport::Reactor => "reactor",
        });
        let backend = match config.transport {
            Transport::Threads => {
                Backend::Threads(ThreadsServer::start(dispatcher, listener, config)?)
            }
            Transport::Reactor => Backend::Reactor(crate::reactor::ReactorServer::start(
                dispatcher, listener, config,
            )?),
        };
        Ok(TcpServer { backend })
    }

    /// The transport actually serving this listener.
    #[must_use]
    pub fn transport(&self) -> Transport {
        match &self.backend {
            Backend::Threads(_) => Transport::Threads,
            Backend::Reactor(_) => Transport::Reactor,
        }
    }

    /// The address the server actually listens on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        match &self.backend {
            Backend::Threads(s) => s.shared.addr,
            Backend::Reactor(s) => s.local_addr(),
        }
    }

    /// The dispatcher serving this listener.
    #[must_use]
    pub fn dispatcher(&self) -> &Dispatcher {
        match &self.backend {
            Backend::Threads(s) => &s.shared.dispatcher,
            Backend::Reactor(s) => s.dispatcher(),
        }
    }

    /// Whether shutdown has been requested (by [`Self::request_shutdown`]
    /// or a client's `SHUTDOWN` command).
    #[must_use]
    pub fn is_shutdown_requested(&self) -> bool {
        match &self.backend {
            Backend::Threads(s) => s.shared.shutdown.load(Ordering::SeqCst),
            Backend::Reactor(s) => s.is_shutdown_requested(),
        }
    }

    /// Transport-level counters.
    #[must_use]
    pub fn transport_stats(&self) -> TransportStats {
        let clients = self.dispatcher().client_stats();
        TransportStats {
            accepted: clients.accepted,
            rejected: clients.rejected_over_limit,
            active: usize::try_from(clients.connected).unwrap_or(usize::MAX),
        }
    }

    /// Raise the shutdown flag and wake the transport. Safe to call from
    /// any thread (including connection handlers); returns immediately.
    pub fn request_shutdown(&self) {
        match &self.backend {
            Backend::Threads(s) => request_shutdown(&s.shared),
            Backend::Reactor(s) => s.request_shutdown(),
        }
    }

    /// Request shutdown and join every transport thread. In-flight
    /// requests already received by the server are answered before their
    /// connections close.
    pub fn shutdown(mut self) {
        match &mut self.backend {
            Backend::Threads(s) => s.shutdown(),
            Backend::Reactor(s) => s.shutdown(),
        }
    }

    /// Block until shutdown is requested (used by the server binary's main
    /// thread), polling every `interval`.
    pub fn wait_for_shutdown_request(&self, interval: Duration) {
        while !self.is_shutdown_requested() {
            std::thread::sleep(interval);
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        // Best effort: stop the threads, but do not block in drop.
        self.request_shutdown();
    }
}

// ---------------------------------------------------------------------------
// Thread-per-connection transport
// ---------------------------------------------------------------------------

struct Shared {
    dispatcher: Dispatcher,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
}

impl Shared {
    fn clients(&self) -> &ClientStatsCells {
        self.dispatcher.client_cells()
    }
}

/// The thread-per-connection backend.
struct ThreadsServer {
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ThreadsServer {
    fn start(
        dispatcher: Dispatcher,
        listener: TcpListener,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            dispatcher,
            config,
            addr: local,
            shutdown: AtomicBool::new(false),
        });
        let connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_connections = Arc::clone(&connections);
        let accept_thread = std::thread::Builder::new()
            .name("gdpr-server-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_connections))?;

        Ok(ThreadsServer {
            shared,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    fn shutdown(&mut self) {
        request_shutdown(&self.shared);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.connections.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn request_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Wake the accept loop with a throwaway loopback connection.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(250));
}

/// Whether the connection count is at the configured cap (`0` = never).
pub(crate) fn at_connection_limit(limit: usize, connected: u64) -> bool {
    limit != 0 && connected >= limit as u64
}

/// Refuse a connection with a final `-ERR max connections reached` frame
/// (best effort — the peer may already be gone) and record the rejection.
pub(crate) fn reject_over_limit(mut stream: TcpStream, clients: &ClientStatsCells) {
    clients.connection_rejected();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.write_all(&encode_frame(&Frame::Error(
        "ERR max connections reached".to_string(),
    )));
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let clients = shared.clients();
        if at_connection_limit(shared.config.max_connections, clients.snapshot().connected) {
            reject_over_limit(stream, clients);
            continue;
        }
        clients.connection_opened();
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("gdpr-server-conn".to_string())
            .spawn(move || {
                serve_connection(stream, &conn_shared);
                conn_shared.clients().connection_closed();
            })
            .expect("spawn connection thread");
        let mut conns = connections.lock();
        // Reap finished handlers so long-running servers do not accumulate
        // one JoinHandle per historical connection.
        conns.retain(|h| !h.is_finished());
        conns.push(handle);
    }
}

/// Serve one connection until the client disconnects, errors, idles out or
/// the server shuts down. Every read drains the decoder completely and the
/// whole batch of replies is written back in one syscall (pipelining); the
/// reply buffer is reused across batches and shrunk back to the configured
/// cap after an oversized reply.
fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));

    let mut decoder = Decoder::with_max_frame_bytes(shared.config.max_frame_bytes);
    let mut session = Session::new();
    let mut read_buf = [0u8; 16 * 1024];
    let mut replies: Vec<u8> = Vec::new();
    let mut last_frame = Instant::now();

    loop {
        // Sample the flag *before* reading: when shutdown is requested we
        // still perform one more read, so bytes already queued on the
        // socket are served before the connection closes.
        let stopping = shared.shutdown.load(Ordering::SeqCst);
        match stream.read(&mut read_buf) {
            Ok(0) => return,
            Ok(n) => {
                decoder.feed(&read_buf[..n]);
                replies.clear();
                let mut decoded_any = false;
                let mut shutdown_seen = false;
                loop {
                    match decoder.next_frame() {
                        Ok(Some(frame)) => {
                            decoded_any = true;
                            if resp::repl::is_replsync_command(&frame) {
                                // The connection becomes a replication
                                // stream: answer everything already
                                // pipelined ahead of the handshake, then
                                // hand the socket to the feeder until the
                                // replica disconnects or we shut down.
                                if !replies.is_empty() && stream.write_all(&replies).is_err() {
                                    return;
                                }
                                crate::replication::serve_stream(
                                    &mut stream,
                                    &shared.dispatcher,
                                    &shared.shutdown,
                                    shared.config.poll_interval,
                                );
                                return;
                            }
                            if is_shutdown_command(&frame) {
                                shutdown_seen = true;
                            }
                            let reply = shared.dispatcher.handle_frame(&frame, &mut session);
                            replies.extend_from_slice(&encode_frame(&reply));
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Protocol error: answer with an error frame and
                            // drop the connection (the stream offset is
                            // unrecoverable).
                            replies.extend_from_slice(&encode_frame(&Frame::Error(format!(
                                "ERR {e}"
                            ))));
                            let _ = stream.write_all(&replies);
                            return;
                        }
                    }
                }
                // Only a *complete* request frame counts as activity: a
                // client trickling a frame byte-by-byte still idles out.
                if decoded_any {
                    last_frame = Instant::now();
                }
                if !replies.is_empty() {
                    if stream.write_all(&replies).is_err() {
                        return;
                    }
                    shrink_buffer(&mut replies, shared.config.buffer_cap_bytes);
                }
                if shutdown_seen {
                    request_shutdown(shared);
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stopping {
                    return;
                }
                if last_frame.elapsed() > shared.config.read_timeout {
                    shared.clients().idle_timeout();
                    let _ = stream
                        .write_all(&encode_frame(&Frame::Error("ERR idle timeout".to_string())));
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Drop an oversized reusable buffer back to the configured capacity cap
/// once its contents are consumed, so one huge reply (a large export, a
/// deep pipeline) does not pin memory for the connection's lifetime.
pub(crate) fn shrink_buffer(buf: &mut Vec<u8>, cap: usize) {
    debug_assert!(buf.is_empty() || buf.len() <= buf.capacity());
    if buf.capacity() > cap {
        buf.clear();
        buf.shrink_to(cap);
    } else {
        buf.clear();
    }
}

/// Whether a decoded frame is the `SHUTDOWN` command (checked at the
/// transport layer, which owns the shutdown flag).
pub(crate) fn is_shutdown_command(frame: &Frame) -> bool {
    match frame {
        Frame::Array(items) => matches!(
            items.first(),
            Some(Frame::Bulk(name)) if name.eq_ignore_ascii_case(b"SHUTDOWN")
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TcpRemoteClient;
    use kvstore::config::StoreConfig;
    use kvstore::store::KvStore;

    fn kv_server(config: ServerConfig) -> TcpServerHandle {
        let dispatcher = Dispatcher::kv(KvStore::open(StoreConfig::in_memory()).unwrap());
        TcpServer::bind(dispatcher, "127.0.0.1:0", config).unwrap()
    }

    /// Every transport-behavior test in this module runs against both
    /// transports; `config.transport` is overridden per run.
    fn for_both_transports(mut test: impl FnMut(Transport)) {
        for transport in [Transport::Reactor, Transport::Threads] {
            test(transport);
        }
    }

    #[test]
    fn serves_basic_roundtrips_over_a_real_socket() {
        for_both_transports(|transport| {
            let server = kv_server(ServerConfig {
                transport,
                ..ServerConfig::default()
            });
            let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
            client.set("k", b"v").unwrap();
            assert_eq!(client.get("k").unwrap(), Some(b"v".to_vec()));
            assert_eq!(client.get("missing").unwrap(), None);
            assert!(client.delete("k").unwrap());
            assert_eq!(server.dispatcher().stats().requests, 4, "{transport}");
            assert_eq!(server.transport(), transport);
            server.shutdown();
        });
    }

    #[test]
    fn pipelined_batch_returns_every_reply_in_order() {
        for_both_transports(|transport| {
            let server = kv_server(ServerConfig {
                transport,
                ..ServerConfig::default()
            });
            let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
            let frames: Vec<Frame> = (0..50)
                .map(|i| Frame::command(["SET", &format!("k{i}"), &format!("v{i}")]))
                .collect();
            let replies = client.pipeline(&frames).unwrap();
            assert_eq!(replies.len(), 50);
            assert!(replies.iter().all(|r| *r == Frame::Simple("OK".into())));
            let frames: Vec<Frame> = (0..50)
                .map(|i| Frame::command(["GET", &format!("k{i}")]))
                .collect();
            let replies = client.pipeline(&frames).unwrap();
            for (i, reply) in replies.iter().enumerate() {
                assert_eq!(*reply, Frame::Bulk(format!("v{i}").into_bytes()));
            }
            server.shutdown();
        });
    }

    #[test]
    fn connection_limit_rejects_excess_clients() {
        for_both_transports(|transport| {
            let config = ServerConfig {
                transport,
                max_connections: 1,
                ..ServerConfig::default()
            };
            let server = kv_server(config);
            let mut first = TcpRemoteClient::connect(server.local_addr()).unwrap();
            first.ping().unwrap();
            // The second client is rejected with a final error frame.
            let mut second = TcpRemoteClient::connect(server.local_addr()).unwrap();
            let err = second.ping().unwrap_err();
            assert!(
                matches!(err, crate::ServerError::Server(ref m) if m.contains("max connections")),
                "{transport}: {err}"
            );
            assert_eq!(server.transport_stats().rejected, 1, "{transport}");
            server.shutdown();
        });
    }

    #[test]
    fn idle_connections_are_dropped_after_the_read_timeout() {
        for_both_transports(|transport| {
            let config = ServerConfig {
                transport,
                read_timeout: Duration::from_millis(100),
                poll_interval: Duration::from_millis(10),
                ..ServerConfig::default()
            };
            let server = kv_server(config);
            let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
            client.ping().unwrap();
            std::thread::sleep(Duration::from_millis(400));
            // The server has either sent the idle-timeout error or closed
            // the socket; either way the next roundtrip fails.
            assert!(client.ping().is_err(), "{transport}");
            assert_eq!(server.dispatcher().client_stats().idle_timeouts, 1);
            server.shutdown();
        });
    }

    #[test]
    fn oversized_frames_poison_only_their_connection() {
        for_both_transports(|transport| {
            let config = ServerConfig {
                transport,
                max_frame_bytes: 1024,
                ..ServerConfig::default()
            };
            let server = kv_server(config);
            let mut bad = TcpRemoteClient::connect(server.local_addr()).unwrap();
            let huge = vec![b'x'; 4096];
            let err = bad
                .roundtrip(&Frame::command([b"SET".to_vec(), b"k".to_vec(), huge]))
                .unwrap_err();
            assert!(
                matches!(err, crate::ServerError::Server(_)),
                "{transport}: {err}"
            );
            // A fresh connection still works.
            let mut good = TcpRemoteClient::connect(server.local_addr()).unwrap();
            good.set("k", b"small").unwrap();
            server.shutdown();
        });
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        for_both_transports(|transport| {
            let server = kv_server(ServerConfig {
                transport,
                ..ServerConfig::default()
            });
            let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
            client.set("k", b"v").unwrap();
            client.shutdown_server().unwrap();
            server.wait_for_shutdown_request(Duration::from_millis(5));
            assert!(server.is_shutdown_requested(), "{transport}");
            server.shutdown();
        });
    }

    #[test]
    fn shutdown_drains_requests_already_on_the_wire() {
        for_both_transports(|transport| {
            let server = kv_server(ServerConfig {
                transport,
                ..ServerConfig::default()
            });
            let addr = server.local_addr();
            let mut client = TcpRemoteClient::connect(addr).unwrap();
            // Write a large pipelined batch and only then request
            // shutdown: the bytes are already queued on the server socket,
            // so every reply must still arrive.
            let frames: Vec<Frame> = (0..200)
                .map(|i| Frame::command(["SET", &format!("k{i}"), "v"]))
                .collect();
            client.send_batch(&frames).unwrap();
            // Give loopback delivery a moment so the batch is queued on
            // the server socket before the flag goes up; the drain
            // guarantee is about bytes the server has already received.
            std::thread::sleep(Duration::from_millis(50));
            server.request_shutdown();
            let replies = client.read_replies(frames.len()).unwrap();
            assert_eq!(replies.len(), 200, "{transport}");
            assert!(replies.iter().all(|r| *r == Frame::Simple("OK".into())));
            server.shutdown();
        });
    }

    #[test]
    fn accept_after_shutdown_is_refused() {
        for_both_transports(|transport| {
            let server = kv_server(ServerConfig {
                transport,
                ..ServerConfig::default()
            });
            let addr = server.local_addr();
            server.shutdown();
            // The listener is gone; connecting now fails (or is dropped
            // immediately by the OS backlog).
            let client = TcpRemoteClient::connect(addr);
            if let Ok(mut c) = client {
                assert!(c.ping().is_err(), "{transport}");
            }
        });
    }

    #[test]
    fn shrink_buffer_drops_oversized_capacity_back_to_the_cap() {
        let mut buf = Vec::with_capacity(1 << 20);
        buf.extend_from_slice(&[0u8; 1 << 20]);
        shrink_buffer(&mut buf, 4096);
        assert!(buf.is_empty());
        assert!(buf.capacity() <= 8192, "{}", buf.capacity());
        // A buffer under the cap keeps its capacity (no thrash).
        let mut small = Vec::with_capacity(1024);
        small.extend_from_slice(b"xyz");
        shrink_buffer(&mut small, 4096);
        assert!(small.is_empty());
        assert!(small.capacity() >= 1024);
    }
}
