//! The command layer: a typed representation of the Redis-style commands
//! the engine supports, their execution against a [`Db`], and a binary
//! encoding used to journal them into the AOF.
//!
//! Keeping commands first-class (rather than executing ad-hoc method calls)
//! is what lets the engine journal every interaction: the store encodes the
//! command, appends it to the AOF/audit trail, then executes it — the same
//! structure Redis' `call()` + `propagate()` has, and the hook the paper's
//! monitoring retrofit relies on.

use std::collections::BTreeMap;

use crate::clock::UnixMillis;
use crate::db::Db;
use crate::object::Bytes;
use crate::serialize::{put_bytes, put_str, put_u64, Reader};
use crate::{Result, StoreError};

/// A command accepted by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Command {
    /// Set a string key.
    Set {
        /// Key to write.
        key: String,
        /// Value to store.
        value: Bytes,
    },
    /// Read a string key.
    Get {
        /// Key to read.
        key: String,
    },
    /// Delete one key.
    Del {
        /// Key to delete.
        key: String,
    },
    /// Check existence of a key.
    Exists {
        /// Key to probe.
        key: String,
    },
    /// Set an absolute expiration deadline in Unix milliseconds.
    ExpireAt {
        /// Key to expire.
        key: String,
        /// Deadline in Unix milliseconds.
        at_ms: UnixMillis,
    },
    /// Set a relative TTL in milliseconds.
    Expire {
        /// Key to expire.
        key: String,
        /// Time to live in milliseconds.
        ttl_ms: u64,
    },
    /// Query the remaining TTL in milliseconds.
    Ttl {
        /// Key to query.
        key: String,
    },
    /// Remove the TTL from a key.
    Persist {
        /// Key to persist.
        key: String,
    },
    /// Set one field of a hash.
    HSet {
        /// Hash key.
        key: String,
        /// Field name.
        field: String,
        /// Field value.
        value: Bytes,
    },
    /// Set several fields of a hash at once.
    HSetMulti {
        /// Hash key.
        key: String,
        /// Field name → value map.
        fields: BTreeMap<String, Bytes>,
    },
    /// Read one field of a hash.
    HGet {
        /// Hash key.
        key: String,
        /// Field name.
        field: String,
    },
    /// Read all fields of a hash.
    HGetAll {
        /// Hash key.
        key: String,
    },
    /// Delete one field of a hash.
    HDel {
        /// Hash key.
        key: String,
        /// Field name.
        field: String,
    },
    /// Add a member to a set.
    SAdd {
        /// Set key.
        key: String,
        /// Member to add.
        member: Bytes,
    },
    /// Remove a member from a set.
    SRem {
        /// Set key.
        key: String,
        /// Member to remove.
        member: Bytes,
    },
    /// List all members of a set.
    SMembers {
        /// Set key.
        key: String,
    },
    /// List keys matching a glob pattern.
    Keys {
        /// Glob pattern (`*`, `?`).
        pattern: String,
    },
    /// Ordered scan of up to `count` keys starting at `start`.
    Scan {
        /// First key (inclusive).
        start: String,
        /// Maximum number of keys to return.
        count: u64,
    },
    /// Number of keys in the database.
    DbSize,
    /// Remove every key.
    FlushAll,
}

/// The result of executing a [`Command`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Reply {
    /// Success with nothing else to say (`+OK`).
    Ok,
    /// A missing key/field.
    Nil,
    /// An integer (counts, booleans-as-0/1, TTLs).
    Int(i64),
    /// A single bulk value.
    Bytes(Bytes),
    /// A list of bulk values.
    Array(Vec<Bytes>),
    /// A list of keys.
    StringArray(Vec<String>),
    /// A field → value map.
    Map(BTreeMap<String, Bytes>),
}

impl Command {
    /// Whether this command mutates the keyspace (and therefore must be
    /// journaled to the AOF even in stock-Redis mode).
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Command::Set { .. }
                | Command::Del { .. }
                | Command::ExpireAt { .. }
                | Command::Expire { .. }
                | Command::Persist { .. }
                | Command::HSet { .. }
                | Command::HSetMulti { .. }
                | Command::HDel { .. }
                | Command::SAdd { .. }
                | Command::SRem { .. }
                | Command::FlushAll
        )
    }

    /// Whether this command can *grow* the keyspace footprint — the subset
    /// of writes the `noeviction` policy rejects with `-OOM` once the shard
    /// is over budget. Deletions, TTL changes and flushes stay allowed so a
    /// client can always reclaim space, matching Redis.
    #[must_use]
    pub fn may_grow_memory(&self) -> bool {
        matches!(
            self,
            Command::Set { .. }
                | Command::HSet { .. }
                | Command::HSetMulti { .. }
                | Command::SAdd { .. }
        )
    }

    /// The name of the command, as it would appear in a Redis log.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Command::Set { .. } => "SET",
            Command::Get { .. } => "GET",
            Command::Del { .. } => "DEL",
            Command::Exists { .. } => "EXISTS",
            Command::ExpireAt { .. } => "PEXPIREAT",
            Command::Expire { .. } => "PEXPIRE",
            Command::Ttl { .. } => "PTTL",
            Command::Persist { .. } => "PERSIST",
            Command::HSet { .. } => "HSET",
            Command::HSetMulti { .. } => "HMSET",
            Command::HGet { .. } => "HGET",
            Command::HGetAll { .. } => "HGETALL",
            Command::HDel { .. } => "HDEL",
            Command::SAdd { .. } => "SADD",
            Command::SRem { .. } => "SREM",
            Command::SMembers { .. } => "SMEMBERS",
            Command::Keys { .. } => "KEYS",
            Command::Scan { .. } => "SCAN",
            Command::DbSize => "DBSIZE",
            Command::FlushAll => "FLUSHALL",
        }
    }

    /// The key a command primarily operates on, if any (used for audit
    /// records and for the GDPR metadata lookups).
    #[must_use]
    pub fn primary_key(&self) -> Option<&str> {
        match self {
            Command::Set { key, .. }
            | Command::Get { key }
            | Command::Del { key }
            | Command::Exists { key }
            | Command::ExpireAt { key, .. }
            | Command::Expire { key, .. }
            | Command::Ttl { key }
            | Command::Persist { key }
            | Command::HSet { key, .. }
            | Command::HSetMulti { key, .. }
            | Command::HGet { key, .. }
            | Command::HGetAll { key }
            | Command::HDel { key, .. }
            | Command::SAdd { key, .. }
            | Command::SRem { key, .. }
            | Command::SMembers { key } => Some(key),
            Command::Keys { .. } | Command::Scan { .. } | Command::DbSize | Command::FlushAll => {
                None
            }
        }
    }

    /// Execute the command against a database.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::WrongType`] when a command is applied to a key
    /// of the wrong type.
    pub fn execute(&self, db: &mut Db) -> Result<Reply> {
        match self {
            Command::Set { key, value } => {
                db.set(key, value.clone());
                Ok(Reply::Ok)
            }
            Command::Get { key } => Ok(match db.get(key)? {
                Some(v) => Reply::Bytes(v),
                None => Reply::Nil,
            }),
            Command::Del { key } => Ok(Reply::Int(i64::from(db.delete(key)))),
            Command::Exists { key } => Ok(Reply::Int(i64::from(db.exists(key)))),
            Command::ExpireAt { key, at_ms } => {
                Ok(Reply::Int(i64::from(db.expire_at(key, *at_ms))))
            }
            Command::Expire { key, ttl_ms } => {
                Ok(Reply::Int(i64::from(db.expire_in_millis(key, *ttl_ms))))
            }
            Command::Ttl { key } => Ok(match db.ttl_millis(key) {
                Some(ms) => Reply::Int(ms as i64),
                None => Reply::Nil,
            }),
            Command::Persist { key } => Ok(Reply::Int(i64::from(db.persist(key)))),
            Command::HSet { key, field, value } => {
                Ok(Reply::Int(i64::from(db.hset(key, field, value.clone())?)))
            }
            Command::HSetMulti { key, fields } => {
                Ok(Reply::Int(db.hset_multi(key, fields)? as i64))
            }
            Command::HGet { key, field } => Ok(match db.hget(key, field)? {
                Some(v) => Reply::Bytes(v),
                None => Reply::Nil,
            }),
            Command::HGetAll { key } => Ok(match db.hgetall(key)? {
                Some(map) => Reply::Map(map),
                None => Reply::Nil,
            }),
            Command::HDel { key, field } => Ok(Reply::Int(i64::from(db.hdel(key, field)?))),
            Command::SAdd { key, member } => {
                Ok(Reply::Int(i64::from(db.sadd(key, member.clone())?)))
            }
            Command::SRem { key, member } => Ok(Reply::Int(i64::from(db.srem(key, member)?))),
            Command::SMembers { key } => Ok(Reply::Array(db.smembers(key)?)),
            Command::Keys { pattern } => Ok(Reply::StringArray(db.keys(pattern))),
            Command::Scan { start, count } => {
                Ok(Reply::StringArray(db.scan_range(start, *count as usize)))
            }
            Command::DbSize => Ok(Reply::Int(db.len() as i64)),
            Command::FlushAll => Ok(Reply::Int(db.flush_all() as i64)),
        }
    }

    /// Encode the command into the binary form journaled in the AOF.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Command::Set { key, value } => {
                out.push(0x01);
                put_str(&mut out, key);
                put_bytes(&mut out, value);
            }
            Command::Get { key } => {
                out.push(0x02);
                put_str(&mut out, key);
            }
            Command::Del { key } => {
                out.push(0x03);
                put_str(&mut out, key);
            }
            Command::Exists { key } => {
                out.push(0x04);
                put_str(&mut out, key);
            }
            Command::ExpireAt { key, at_ms } => {
                out.push(0x05);
                put_str(&mut out, key);
                put_u64(&mut out, *at_ms);
            }
            Command::Expire { key, ttl_ms } => {
                out.push(0x06);
                put_str(&mut out, key);
                put_u64(&mut out, *ttl_ms);
            }
            Command::Ttl { key } => {
                out.push(0x07);
                put_str(&mut out, key);
            }
            Command::Persist { key } => {
                out.push(0x08);
                put_str(&mut out, key);
            }
            Command::HSet { key, field, value } => {
                out.push(0x09);
                put_str(&mut out, key);
                put_str(&mut out, field);
                put_bytes(&mut out, value);
            }
            Command::HSetMulti { key, fields } => {
                out.push(0x0a);
                put_str(&mut out, key);
                put_u64(&mut out, fields.len() as u64);
                for (f, v) in fields {
                    put_str(&mut out, f);
                    put_bytes(&mut out, v);
                }
            }
            Command::HGet { key, field } => {
                out.push(0x0b);
                put_str(&mut out, key);
                put_str(&mut out, field);
            }
            Command::HGetAll { key } => {
                out.push(0x0c);
                put_str(&mut out, key);
            }
            Command::HDel { key, field } => {
                out.push(0x0d);
                put_str(&mut out, key);
                put_str(&mut out, field);
            }
            Command::SAdd { key, member } => {
                out.push(0x0e);
                put_str(&mut out, key);
                put_bytes(&mut out, member);
            }
            Command::SRem { key, member } => {
                out.push(0x0f);
                put_str(&mut out, key);
                put_bytes(&mut out, member);
            }
            Command::SMembers { key } => {
                out.push(0x10);
                put_str(&mut out, key);
            }
            Command::Keys { pattern } => {
                out.push(0x11);
                put_str(&mut out, pattern);
            }
            Command::Scan { start, count } => {
                out.push(0x12);
                put_str(&mut out, start);
                put_u64(&mut out, *count);
            }
            Command::DbSize => out.push(0x13),
            Command::FlushAll => out.push(0x14),
        }
        out
    }

    /// Decode a command previously produced by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] for malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        const CTX: &str = "aof command";
        let mut r = Reader::new(bytes);
        let opcode = r.get_u8(CTX)?;
        let cmd = match opcode {
            0x01 => Command::Set {
                key: r.get_str(CTX)?,
                value: r.get_bytes(CTX)?,
            },
            0x02 => Command::Get {
                key: r.get_str(CTX)?,
            },
            0x03 => Command::Del {
                key: r.get_str(CTX)?,
            },
            0x04 => Command::Exists {
                key: r.get_str(CTX)?,
            },
            0x05 => Command::ExpireAt {
                key: r.get_str(CTX)?,
                at_ms: r.get_u64(CTX)?,
            },
            0x06 => Command::Expire {
                key: r.get_str(CTX)?,
                ttl_ms: r.get_u64(CTX)?,
            },
            0x07 => Command::Ttl {
                key: r.get_str(CTX)?,
            },
            0x08 => Command::Persist {
                key: r.get_str(CTX)?,
            },
            0x09 => Command::HSet {
                key: r.get_str(CTX)?,
                field: r.get_str(CTX)?,
                value: r.get_bytes(CTX)?,
            },
            0x0a => {
                let key = r.get_str(CTX)?;
                let n = r.get_u64(CTX)?;
                let mut fields = BTreeMap::new();
                for _ in 0..n {
                    let f = r.get_str(CTX)?;
                    let v = r.get_bytes(CTX)?;
                    fields.insert(f, v);
                }
                Command::HSetMulti { key, fields }
            }
            0x0b => Command::HGet {
                key: r.get_str(CTX)?,
                field: r.get_str(CTX)?,
            },
            0x0c => Command::HGetAll {
                key: r.get_str(CTX)?,
            },
            0x0d => Command::HDel {
                key: r.get_str(CTX)?,
                field: r.get_str(CTX)?,
            },
            0x0e => Command::SAdd {
                key: r.get_str(CTX)?,
                member: r.get_bytes(CTX)?,
            },
            0x0f => Command::SRem {
                key: r.get_str(CTX)?,
                member: r.get_bytes(CTX)?,
            },
            0x10 => Command::SMembers {
                key: r.get_str(CTX)?,
            },
            0x11 => Command::Keys {
                pattern: r.get_str(CTX)?,
            },
            0x12 => Command::Scan {
                start: r.get_str(CTX)?,
                count: r.get_u64(CTX)?,
            },
            0x13 => Command::DbSize,
            0x14 => Command::FlushAll,
            other => {
                return Err(StoreError::Corrupt {
                    context: CTX,
                    detail: format!("unknown opcode 0x{other:02x}"),
                })
            }
        };
        if !r.is_at_end() {
            return Err(StoreError::Corrupt {
                context: CTX,
                detail: format!("{} trailing bytes after command", r.remaining()),
            });
        }
        Ok(cmd)
    }
}

impl Reply {
    /// Interpret the reply as an optional bulk value (for `GET`-style
    /// commands).
    #[must_use]
    pub fn into_bytes(self) -> Option<Bytes> {
        match self {
            Reply::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Interpret the reply as an integer, if it is one.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Reply::Int(i) => Some(*i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use std::sync::Arc;

    fn db() -> Db {
        Db::new(Arc::new(SimClock::new(1_000)))
    }

    fn all_commands() -> Vec<Command> {
        let mut fields = BTreeMap::new();
        fields.insert("f0".to_string(), b"v0".to_vec());
        fields.insert("f1".to_string(), b"v1".to_vec());
        vec![
            Command::Set {
                key: "k".into(),
                value: b"v".to_vec(),
            },
            Command::Get { key: "k".into() },
            Command::Del { key: "k".into() },
            Command::Exists { key: "k".into() },
            Command::ExpireAt {
                key: "k".into(),
                at_ms: 123_456,
            },
            Command::Expire {
                key: "k".into(),
                ttl_ms: 999,
            },
            Command::Ttl { key: "k".into() },
            Command::Persist { key: "k".into() },
            Command::HSet {
                key: "h".into(),
                field: "f".into(),
                value: b"v".to_vec(),
            },
            Command::HSetMulti {
                key: "h".into(),
                fields,
            },
            Command::HGet {
                key: "h".into(),
                field: "f".into(),
            },
            Command::HGetAll { key: "h".into() },
            Command::HDel {
                key: "h".into(),
                field: "f".into(),
            },
            Command::SAdd {
                key: "s".into(),
                member: b"m".to_vec(),
            },
            Command::SRem {
                key: "s".into(),
                member: b"m".to_vec(),
            },
            Command::SMembers { key: "s".into() },
            Command::Keys {
                pattern: "*".into(),
            },
            Command::Scan {
                start: "a".into(),
                count: 10,
            },
            Command::DbSize,
            Command::FlushAll,
        ]
    }

    #[test]
    fn encode_decode_roundtrip_every_command() {
        for cmd in all_commands() {
            let encoded = cmd.encode();
            let decoded = Command::decode(&encoded).unwrap();
            assert_eq!(decoded, cmd);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Command::decode(&[]).is_err());
        assert!(Command::decode(&[0xff]).is_err());
        // Valid opcode but truncated body.
        assert!(Command::decode(&[0x01, 4, 0, 0, 0, b'a']).is_err());
        // Trailing junk.
        let mut enc = Command::DbSize.encode();
        enc.push(0);
        assert!(Command::decode(&enc).is_err());
    }

    #[test]
    fn write_classification() {
        for cmd in all_commands() {
            let expected = !matches!(
                cmd,
                Command::Get { .. }
                    | Command::Exists { .. }
                    | Command::Ttl { .. }
                    | Command::HGet { .. }
                    | Command::HGetAll { .. }
                    | Command::SMembers { .. }
                    | Command::Keys { .. }
                    | Command::Scan { .. }
                    | Command::DbSize
            );
            assert_eq!(cmd.is_write(), expected, "{}", cmd.name());
        }
    }

    #[test]
    fn primary_key_extraction() {
        assert_eq!(
            Command::Get { key: "abc".into() }.primary_key(),
            Some("abc")
        );
        assert_eq!(Command::DbSize.primary_key(), None);
        assert_eq!(Command::FlushAll.primary_key(), None);
    }

    #[test]
    fn execute_string_lifecycle() {
        let mut db = db();
        assert_eq!(
            Command::Set {
                key: "k".into(),
                value: b"v".to_vec()
            }
            .execute(&mut db)
            .unwrap(),
            Reply::Ok
        );
        assert_eq!(
            Command::Get { key: "k".into() }.execute(&mut db).unwrap(),
            Reply::Bytes(b"v".to_vec())
        );
        assert_eq!(
            Command::Exists { key: "k".into() }
                .execute(&mut db)
                .unwrap(),
            Reply::Int(1)
        );
        assert_eq!(
            Command::Del { key: "k".into() }.execute(&mut db).unwrap(),
            Reply::Int(1)
        );
        assert_eq!(
            Command::Get { key: "k".into() }.execute(&mut db).unwrap(),
            Reply::Nil
        );
    }

    #[test]
    fn execute_hash_and_scan() {
        let mut db = db();
        let mut fields = BTreeMap::new();
        fields.insert("field0".to_string(), b"a".to_vec());
        fields.insert("field1".to_string(), b"b".to_vec());
        Command::HSetMulti {
            key: "user1".into(),
            fields,
        }
        .execute(&mut db)
        .unwrap();
        Command::HSet {
            key: "user2".into(),
            field: "field0".into(),
            value: b"c".to_vec(),
        }
        .execute(&mut db)
        .unwrap();
        let reply = Command::HGetAll {
            key: "user1".into(),
        }
        .execute(&mut db)
        .unwrap();
        match reply {
            Reply::Map(m) => assert_eq!(m.len(), 2),
            other => panic!("expected map, got {other:?}"),
        }
        assert_eq!(
            Command::Scan {
                start: "user1".into(),
                count: 10
            }
            .execute(&mut db)
            .unwrap(),
            Reply::StringArray(vec!["user1".into(), "user2".into()])
        );
        assert_eq!(Command::DbSize.execute(&mut db).unwrap(), Reply::Int(2));
    }

    #[test]
    fn execute_ttl_commands() {
        let mut db = db();
        Command::Set {
            key: "k".into(),
            value: b"v".to_vec(),
        }
        .execute(&mut db)
        .unwrap();
        assert_eq!(
            Command::Expire {
                key: "k".into(),
                ttl_ms: 5_000
            }
            .execute(&mut db)
            .unwrap(),
            Reply::Int(1)
        );
        match (Command::Ttl { key: "k".into() }).execute(&mut db).unwrap() {
            Reply::Int(ms) => assert!(ms <= 5_000 && ms > 0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            Command::Persist { key: "k".into() }
                .execute(&mut db)
                .unwrap(),
            Reply::Int(1)
        );
        assert_eq!(
            Command::Ttl { key: "k".into() }.execute(&mut db).unwrap(),
            Reply::Nil
        );
        assert_eq!(
            Command::Expire {
                key: "missing".into(),
                ttl_ms: 5
            }
            .execute(&mut db)
            .unwrap(),
            Reply::Int(0)
        );
    }

    #[test]
    fn reply_accessors() {
        assert_eq!(
            Reply::Bytes(b"x".to_vec()).into_bytes(),
            Some(b"x".to_vec())
        );
        assert_eq!(Reply::Nil.into_bytes(), None);
        assert_eq!(Reply::Int(7).as_int(), Some(7));
        assert_eq!(Reply::Ok.as_int(), None);
    }
}
