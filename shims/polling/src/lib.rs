//! Offline stand-in for the `polling` crate: portable readiness polling
//! over raw syscalls, plus the one rlimit helper a 10k-connection server
//! needs.
//!
//! The build container has no registry access, so this shim provides the
//! small readiness-API surface the reactor transport in `gdpr-server`
//! consumes:
//!
//! * [`Poller`] — add/modify/delete interest in file descriptors and
//!   [`Poller::wait`] for readiness events, **level-triggered** on both
//!   backends (an event keeps firing while the condition holds, so a
//!   partially drained socket is re-reported on the next wait);
//! * two backends behind one API: `epoll(7)` on Linux (O(ready) wakeups,
//!   the backend that makes 10k mostly-idle connections cheap) and a
//!   portable `poll(2)` fallback (O(registered) per wait) so the crate
//!   builds and the reactor runs on any Unix — selectable explicitly or
//!   via `GDPR_POLL_BACKEND=epoll|poll` for differential testing;
//! * [`Poller::notify`] — wake a blocked [`Poller::wait`] from another
//!   thread (worker threads use it to hand completed batches back to the
//!   reactor), implemented as a self-pipe with a coalescing flag so the
//!   pipe never accumulates more than one pending byte;
//! * [`raise_nofile_limit`] — lift `RLIMIT_NOFILE`'s soft limit toward
//!   the hard limit, without which "10k connections" dies at the default
//!   1024 file descriptors on most distros.
//!
//! All unsafe syscall FFI in the workspace is confined to this crate; the
//! server crate itself stays `#![forbid(unsafe_code)]`.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use core::ffi::c_int;

/// A readiness event: the registered `key` plus which directions are
/// ready. Error/hang-up conditions are folded into both directions so the
/// owner observes them on its next read/write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen identifier registered with the descriptor.
    pub key: usize,
    /// The descriptor is ready for reading (or has an error/HUP pending).
    pub readable: bool,
    /// The descriptor is ready for writing (or has an error/HUP pending).
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    #[must_use]
    pub fn readable(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    #[must_use]
    pub fn writable(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    #[must_use]
    pub fn all(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }
}

/// Which kernel interface backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `epoll(7)`: interest lives in the kernel, waits cost O(ready).
    /// Linux only.
    Epoll,
    /// `poll(2)`: the interest set is rebuilt and scanned every wait —
    /// O(registered) — but works on every Unix.
    Poll,
}

impl Backend {
    /// The default backend for this platform, honoring the
    /// `GDPR_POLL_BACKEND` environment variable (`epoll` or `poll`).
    #[must_use]
    pub fn from_env_or_default() -> Self {
        match std::env::var("GDPR_POLL_BACKEND").as_deref() {
            Ok("poll") => Backend::Poll,
            Ok("epoll") => default_backend(),
            _ => default_backend(),
        }
    }
}

#[cfg(target_os = "linux")]
fn default_backend() -> Backend {
    Backend::Epoll
}

#[cfg(not(target_os = "linux"))]
fn default_backend() -> Backend {
    Backend::Poll
}

/// The key space is the caller's except for this reserved value, which
/// tags the internal wake pipe.
const WAKE_KEY: u64 = u64::MAX;

/// Readiness poller over a set of registered file descriptors.
///
/// All methods take `&self`: registration calls belong to the owning
/// reactor thread, while [`Poller::notify`] is safe from any thread.
#[derive(Debug)]
pub struct Poller {
    backend: BackendImpl,
    wake_reader: Mutex<std::io::PipeReader>,
    wake_writer: std::io::PipeWriter,
    /// Coalesces notifies: at most one byte is ever pending in the pipe,
    /// so draining it can never block.
    notified: AtomicBool,
}

#[derive(Debug)]
enum BackendImpl {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(pollfallback::PollSet),
}

impl Poller {
    /// Create a poller on the platform-default backend (see
    /// [`Backend::from_env_or_default`]).
    ///
    /// # Errors
    ///
    /// Propagates backend-creation syscall failures.
    pub fn new() -> io::Result<Self> {
        Poller::with_backend(Backend::from_env_or_default())
    }

    /// Create a poller on an explicit backend. Requesting
    /// [`Backend::Epoll`] off Linux falls back to `poll(2)`.
    ///
    /// # Errors
    ///
    /// Propagates backend-creation syscall failures.
    pub fn with_backend(backend: Backend) -> io::Result<Self> {
        let (wake_reader, wake_writer) = std::io::pipe()?;
        let backend = match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => BackendImpl::Epoll(epoll::Epoll::new()?),
            _ => BackendImpl::Poll(pollfallback::PollSet::new()),
        };
        let poller = Poller {
            backend,
            wake_reader: Mutex::new(wake_reader),
            wake_writer,
            notified: AtomicBool::new(false),
        };
        let wake_fd = poller.wake_reader.lock().expect("wake lock").as_raw_fd();
        poller.register_raw(
            wake_fd,
            WAKE_KEY,
            Event {
                key: 0,
                readable: true,
                writable: false,
            },
        )?;
        Ok(poller)
    }

    /// The backend actually in use.
    #[must_use]
    pub fn backend(&self) -> Backend {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(_) => Backend::Epoll,
            BackendImpl::Poll(_) => Backend::Poll,
        }
    }

    /// Register interest in `source` under `event.key`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (e.g. the descriptor is already
    /// registered).
    pub fn add(&self, source: &impl AsRawFd, event: Event) -> io::Result<()> {
        self.register_raw(source.as_raw_fd(), event.key as u64, event)
    }

    fn register_raw(&self, fd: RawFd, key: u64, event: Event) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(ep) => ep.add(fd, key, event),
            BackendImpl::Poll(ps) => {
                ps.add(fd, key, event);
                Ok(())
            }
        }
    }

    /// Change the interest set of an already registered descriptor.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (e.g. the descriptor was never
    /// registered).
    pub fn modify(&self, source: &impl AsRawFd, event: Event) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(ep) => ep.modify(source.as_raw_fd(), event.key as u64, event),
            BackendImpl::Poll(ps) => ps.modify(source.as_raw_fd(), event.key as u64, event),
        }
    }

    /// Remove a descriptor from the interest set. Call *before* closing
    /// the descriptor.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(ep) => ep.delete(source.as_raw_fd()),
            BackendImpl::Poll(ps) => {
                ps.delete(source.as_raw_fd());
                Ok(())
            }
        }
    }

    /// Block until at least one registered descriptor is ready, the
    /// timeout elapses (`Ok` with no events), or [`Poller::notify`] is
    /// called. Events are appended to `events` (cleared first) and the
    /// count returned. `None` blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Propagates wait-syscall failures (`EINTR` is retried internally).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => c_int::try_from(d.as_millis()).unwrap_or(c_int::MAX),
        };
        let mut woke = false;
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(ep) => ep.wait(events, timeout_ms, &mut woke)?,
            BackendImpl::Poll(ps) => ps.wait(events, timeout_ms, &mut woke)?,
        }
        if woke {
            self.drain_wake();
        }
        Ok(events.len())
    }

    /// Wake a blocked (or the next) [`Poller::wait`] from any thread.
    /// Multiple notifies before the wait returns coalesce into one.
    pub fn notify(&self) {
        if !self.notified.swap(true, Ordering::SeqCst) {
            let _ = (&self.wake_writer).write(&[1u8]);
        }
    }

    fn drain_wake(&self) {
        // Clear the flag BEFORE consuming the byte: a notify landing
        // between the two puts a fresh byte in the pipe, so the next wait
        // wakes (at worst spuriously) instead of sleeping through it.
        self.notified.store(false, Ordering::SeqCst);
        let mut byte = [0u8; 8];
        if let Ok(reader) = self.wake_reader.lock() {
            let _ = (&*reader).read(&mut byte);
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::{c_int, io, Event, RawFd, WAKE_KEY};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// Mirrors the kernel's `struct epoll_event`; packed on x86-64, where
    /// the kernel ABI has no padding between the two fields.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    #[derive(Debug)]
    pub(super) struct Epoll {
        epfd: OwnedFd,
    }

    fn interest_bits(event: Event) -> u32 {
        let mut bits = EPOLLRDHUP;
        if event.readable {
            bits |= EPOLLIN;
        }
        if event.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    impl Epoll {
        pub(super) fn new() -> io::Result<Self> {
            // SAFETY: plain syscall; the returned descriptor (checked for
            // -1) is immediately wrapped in OwnedFd, which closes it.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: fd is a freshly created, valid, uniquely owned epoll fd.
            Ok(Epoll {
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, key: u64, bits: u32) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: bits,
                data: key,
            };
            // SAFETY: epfd and the event pointer are valid for the call's
            // duration; the kernel copies the struct synchronously.
            let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn add(&self, fd: RawFd, key: u64, event: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, key, interest_bits(event))
        }

        pub(super) fn modify(&self, fd: RawFd, key: u64, event: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, key, interest_bits(event))
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout_ms: c_int,
            woke: &mut bool,
        ) -> io::Result<()> {
            const CAPACITY: usize = 1024;
            let mut buf = [EpollEvent { events: 0, data: 0 }; CAPACITY];
            let n = loop {
                // SAFETY: the buffer outlives the call and CAPACITY bounds
                // how many entries the kernel may write.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd.as_raw_fd(),
                        buf.as_mut_ptr(),
                        CAPACITY as c_int,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in buf.iter().take(n) {
                // Copy out of the (possibly packed) struct before use.
                let bits = ev.events;
                let key = ev.data;
                if key == WAKE_KEY {
                    *woke = true;
                    continue;
                }
                let fatal = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                out.push(Event {
                    key: key as usize,
                    readable: bits & EPOLLIN != 0 || fatal,
                    writable: bits & EPOLLOUT != 0 || fatal,
                });
            }
            Ok(())
        }
    }
}

mod pollfallback {
    use super::{c_int, io, Event, HashMap, Mutex, RawFd, WAKE_KEY};

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    /// Mirrors `struct pollfd`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    #[cfg(target_os = "linux")]
    type NfdsT = core::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = core::ffi::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    }

    /// The interest set, rebuilt into a `pollfd` array every wait.
    #[derive(Debug)]
    pub(super) struct PollSet {
        interest: Mutex<HashMap<RawFd, (u64, bool, bool)>>,
    }

    impl PollSet {
        pub(super) fn new() -> Self {
            PollSet {
                interest: Mutex::new(HashMap::new()),
            }
        }

        pub(super) fn add(&self, fd: RawFd, key: u64, event: Event) {
            self.interest
                .lock()
                .expect("poll interest lock")
                .insert(fd, (key, event.readable, event.writable));
        }

        pub(super) fn modify(&self, fd: RawFd, key: u64, event: Event) -> io::Result<()> {
            match self
                .interest
                .lock()
                .expect("poll interest lock")
                .get_mut(&fd)
            {
                Some(entry) => {
                    *entry = (key, event.readable, event.writable);
                    Ok(())
                }
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "descriptor is not registered",
                )),
            }
        }

        pub(super) fn delete(&self, fd: RawFd) {
            self.interest
                .lock()
                .expect("poll interest lock")
                .remove(&fd);
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout_ms: c_int,
            woke: &mut bool,
        ) -> io::Result<()> {
            let (mut fds, keys): (Vec<PollFd>, Vec<u64>) = {
                let interest = self.interest.lock().expect("poll interest lock");
                let mut fds = Vec::with_capacity(interest.len());
                let mut keys = Vec::with_capacity(interest.len());
                for (&fd, &(key, readable, writable)) in interest.iter() {
                    let mut events = 0i16;
                    if readable {
                        events |= POLLIN;
                    }
                    if writable {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd,
                        events,
                        revents: 0,
                    });
                    keys.push(key);
                }
                (fds, keys)
            };
            let n = loop {
                // SAFETY: the fds buffer is valid and its length is passed
                // as nfds; poll writes only to revents within bounds.
                let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (pfd, &key) in fds.iter().zip(keys.iter()) {
                let revents = pfd.revents;
                if revents == 0 {
                    continue;
                }
                if key == WAKE_KEY {
                    *woke = true;
                    continue;
                }
                let fatal = revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
                out.push(Event {
                    key: key as usize,
                    readable: revents & POLLIN != 0 || fatal,
                    writable: revents & POLLOUT != 0 || fatal,
                });
            }
            Ok(())
        }
    }
}

/// `RLIMIT_NOFILE` for [`raise_nofile_limit`].
#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: c_int = 8;

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

/// Raise the soft `RLIMIT_NOFILE` toward `want` descriptors (capped at
/// the hard limit) and return the resulting soft limit. A no-op when the
/// soft limit already covers `want`.
///
/// # Errors
///
/// Propagates `getrlimit`/`setrlimit` failures.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: the struct outlives the call and matches the kernel layout.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    let target = want.min(lim.rlim_max);
    let new = Rlimit {
        rlim_cur: target,
        rlim_max: lim.rlim_max,
    };
    // SAFETY: same-layout struct, read-only for the kernel.
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::Instant;

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    fn connected_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn reports_read_readiness_with_the_registered_key() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (client, server) = connected_pair();
            server.set_nonblocking(true).unwrap();
            poller.add(&server, Event::readable(7)).unwrap();
            let mut events = Vec::new();
            // Nothing to read yet: the wait times out empty.
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}");
            (&client).write_all(b"x").unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(n, 1, "{backend:?}");
            assert_eq!(events[0].key, 7);
            assert!(events[0].readable);
        }
    }

    #[test]
    fn level_triggered_until_drained_and_modify_changes_interest() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (client, server) = connected_pair();
            server.set_nonblocking(true).unwrap();
            poller.add(&server, Event::readable(3)).unwrap();
            (&client).write_all(b"abc").unwrap();
            let mut events = Vec::new();
            // Unread data keeps firing (level-triggered).
            for _ in 0..2 {
                poller
                    .wait(&mut events, Some(Duration::from_secs(2)))
                    .unwrap();
                assert!(
                    events.iter().any(|e| e.key == 3 && e.readable),
                    "{backend:?}"
                );
            }
            // A fresh socket is immediately writable once we ask for it.
            poller.modify(&server, Event::all(3)).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 3 && e.writable),
                "{backend:?}"
            );
            // Dropping write interest silences it again once drained.
            let mut buf = [0u8; 8];
            let _ = (&server).read(&mut buf);
            poller.modify(&server, Event::readable(3)).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}");
        }
    }

    #[test]
    fn delete_stops_reporting() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (client, server) = connected_pair();
            server.set_nonblocking(true).unwrap();
            poller.add(&server, Event::readable(9)).unwrap();
            (&client).write_all(b"x").unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(events.len(), 1);
            poller.delete(&server).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}");
        }
    }

    #[test]
    fn notify_wakes_a_blocked_wait_from_another_thread() {
        for backend in backends() {
            let poller = Arc::new(Poller::with_backend(backend).unwrap());
            let notifier = Arc::clone(&poller);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                notifier.notify();
            });
            let mut events = Vec::new();
            let start = Instant::now();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "{backend:?}: notify did not wake the wait"
            );
            // The wake itself is internal: no user event is surfaced.
            assert_eq!(n, 0, "{backend:?}");
            handle.join().unwrap();
            // Coalesced notifies do not leave stale wakeups behind.
            poller.notify();
            poller.notify();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            let start = Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert!(start.elapsed() >= Duration::from_millis(40), "{backend:?}");
        }
    }

    #[test]
    fn timeout_expires_with_no_events() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let mut events = Vec::new();
            let start = Instant::now();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert_eq!(n, 0);
            assert!(start.elapsed() >= Duration::from_millis(25), "{backend:?}");
        }
    }

    #[test]
    fn raise_nofile_limit_is_monotone_and_idempotent() {
        let current = raise_nofile_limit(64).unwrap();
        assert!(current >= 64);
        let again = raise_nofile_limit(current).unwrap();
        assert!(again >= current);
    }

    #[test]
    fn env_selects_the_fallback_backend() {
        // Do not mutate the environment (other tests run concurrently);
        // just pin the explicit constructors.
        let poller = Poller::with_backend(Backend::Poll).unwrap();
        assert_eq!(poller.backend(), Backend::Poll);
        #[cfg(target_os = "linux")]
        {
            let poller = Poller::with_backend(Backend::Epoll).unwrap();
            assert_eq!(poller.backend(), Backend::Epoll);
        }
    }
}
