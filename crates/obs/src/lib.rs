//! Observability primitives shared across the whole stack.
//!
//! The paper's claim is that GDPR features carry a *measurable* storage
//! cost; this crate is what makes the cost measurable in a running server
//! rather than only in offline benchmark binaries. It is deliberately
//! zero-dependency (std only) so every other crate — the engine, the
//! compliance layer, the server, the benchmark harness — can depend on it
//! without cycles:
//!
//! * [`hist::LatencyHistogram`] — the log-scale (power-of-two buckets,
//!   microsecond resolution) histogram the YCSB driver has always used,
//!   lifted here so servers and benchmarks share one bucketing scheme;
//! * [`recorder::AtomicHistogram`] — the always-on recording form:
//!   striped atomic buckets (per-thread stripe selection, merge on
//!   scrape) so the hot path pays a clock read plus a few relaxed atomic
//!   bumps and concurrent recorders do not share cache lines;
//! * [`slowlog::Slowlog`] — a bounded ring of the slowest requests,
//!   Redis-`SLOWLOG` style (threshold in microseconds, `GET`/`RESET`/
//!   `LEN` surface is wired up in the server's dispatcher);
//! * [`prom::PromWriter`] — Prometheus text-exposition (version 0.0.4)
//!   rendering for counters, gauges and the histograms above.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod hist;
pub mod prom;
pub mod recorder;
pub mod slowlog;

pub use hist::LatencyHistogram;
pub use prom::PromWriter;
pub use recorder::AtomicHistogram;
pub use slowlog::{Slowlog, SlowlogEntry};
