//! Flush policies: the real-time vs eventual compliance knob.
//!
//! The paper's §4.1 experiment is precisely this policy choice applied to
//! the monitoring log: fsync every record synchronously (real-time
//! compliance, ~5 % of baseline throughput) or batch for up to one second
//! (eventual compliance, ~30 % of baseline, at the risk of losing the last
//! second of evidence).

/// When buffered audit records are forced to durable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush and fsync after every record — real-time compliance.
    Synchronous,
    /// Flush and fsync at most once per `interval_ms` — eventual
    /// compliance with a bounded evidence-loss window.
    Periodic {
        /// Maximum time records may sit in the buffer, in milliseconds.
        interval_ms: u64,
    },
    /// Flush once the buffer holds `max_records` — eventual compliance
    /// bounded by record count rather than time.
    Batched {
        /// Maximum number of buffered records before a flush.
        max_records: usize,
    },
    /// Never flush automatically (only on explicit `flush()` / drop). Used
    /// as the "monitoring disabled" baseline in benchmarks.
    Manual,
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy::Periodic { interval_ms: 1_000 }
    }
}

impl FlushPolicy {
    /// The paper's strict real-time configuration.
    #[must_use]
    pub fn real_time() -> Self {
        FlushPolicy::Synchronous
    }

    /// The paper's relaxed configuration (fsync once per second).
    #[must_use]
    pub fn every_second() -> Self {
        FlushPolicy::Periodic { interval_ms: 1_000 }
    }

    /// Human-readable label used in benchmark output.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            FlushPolicy::Synchronous => "sync".to_string(),
            FlushPolicy::Periodic { interval_ms } => format!("every-{interval_ms}ms"),
            FlushPolicy::Batched { max_records } => format!("batch-{max_records}"),
            FlushPolicy::Manual => "manual".to_string(),
        }
    }

    /// Whether this policy satisfies the paper's definition of *real-time*
    /// compliance for monitoring (no interaction is acknowledged before its
    /// audit record is durable).
    #[must_use]
    pub fn is_real_time(&self) -> bool {
        matches!(self, FlushPolicy::Synchronous)
    }

    /// Upper bound, in milliseconds, on how long an audit record may remain
    /// volatile (`None` when unbounded).
    #[must_use]
    pub fn max_loss_window_ms(&self) -> Option<u64> {
        match self {
            FlushPolicy::Synchronous => Some(0),
            FlushPolicy::Periodic { interval_ms } => Some(*interval_ms),
            FlushPolicy::Batched { .. } | FlushPolicy::Manual => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_relaxed_point() {
        assert_eq!(
            FlushPolicy::default(),
            FlushPolicy::Periodic { interval_ms: 1_000 }
        );
        assert_eq!(
            FlushPolicy::every_second().max_loss_window_ms(),
            Some(1_000)
        );
    }

    #[test]
    fn real_time_classification() {
        assert!(FlushPolicy::real_time().is_real_time());
        assert!(!FlushPolicy::every_second().is_real_time());
        assert!(!(FlushPolicy::Batched { max_records: 10 }).is_real_time());
        assert!(!FlushPolicy::Manual.is_real_time());
    }

    #[test]
    fn loss_windows() {
        assert_eq!(FlushPolicy::Synchronous.max_loss_window_ms(), Some(0));
        assert_eq!(
            (FlushPolicy::Batched { max_records: 5 }).max_loss_window_ms(),
            None
        );
        assert_eq!(FlushPolicy::Manual.max_loss_window_ms(), None);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            FlushPolicy::Synchronous,
            FlushPolicy::every_second(),
            FlushPolicy::Batched { max_records: 64 },
            FlushPolicy::Manual,
        ]
        .iter()
        .map(FlushPolicy::label)
        .collect();
        let unique: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }
}
