//! Transport abstraction: one [`GdprBenchClient`] per connection, one
//! [`ClientFactory`] per store-under-test.
//!
//! Three implementations drive the exact same [`GdprOp`] stream:
//!
//! * [`InProcessFactory`] — straight calls on an [`Arc<GdprStore>`];
//! * [`NetsimFactory`] — RESP frames through the simulated network link
//!   into the shared dispatcher ([`netsim::server::RespKvServer`]);
//! * [`TcpFactory`] — RESP frames over a real socket to a live
//!   [`gdpr_server::tcp::TcpServer`] (either transport).
//!
//! Every implementation classifies results into the same [`Outcome`]
//! space, so a differential harness can compare runs op-by-op across
//! transports. Compliance refusals (`access denied`, purpose limitation,
//! location policy, missing auth) classify as [`Outcome::Denied`] whether
//! they arrive as a typed [`GdprError`] or as a `-ERR`/`-NOAUTH` wire
//! frame.

use std::net::SocketAddr;
use std::sync::Arc;

use gdpr_core::metadata::PersonalMetadata;
use gdpr_core::store::{AccessContext, GdprStore};
use gdpr_core::GdprError;
use gdpr_server::client::TcpRemoteClient;
use netsim::client::RemoteClient;
use netsim::link::LinkConfig;
use netsim::server::RespKvServer;
use resp::command::GdprRequest;
use resp::Frame;

use crate::ops::{GdprOp, Outcome};
use crate::spec::Role;

/// One driving connection: applies ops, classifies outcomes.
pub trait GdprBenchClient {
    /// Execute `op` and classify its result.
    fn apply(&mut self, op: &GdprOp) -> Outcome;
}

/// Produces connections for driver threads. `connect` is called once per
/// thread; implementations authenticate the connection for their
/// configured actor/purpose before returning it.
pub trait ClientFactory: Sync {
    /// Open (and authenticate) one driving connection.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the transport cannot be
    /// established (socket refused, auth rejected).
    fn connect(&self) -> Result<Box<dyn GdprBenchClient + Send>, String>;
}

/// Classify a wire error message the way the in-process path classifies
/// typed [`GdprError`]s: the strings are produced by the dispatcher from
/// those same errors, so the two classifications agree by construction.
#[must_use]
pub fn classify_error_message(message: &str) -> Outcome {
    if message.starts_with("NOAUTH") {
        return Outcome::Denied;
    }
    let m = message.to_ascii_lowercase();
    if m.contains("access denied")
        || m.contains("is not permitted")
        || m.contains("violates the location policy")
    {
        Outcome::Denied
    } else {
        Outcome::Failed
    }
}

/// Classify a typed compliance error.
#[must_use]
pub fn classify_gdpr_error(error: &GdprError) -> Outcome {
    match error {
        GdprError::AccessDenied { .. }
        | GdprError::PurposeViolation { .. }
        | GdprError::LocationViolation { .. } => Outcome::Denied,
        _ => Outcome::Failed,
    }
}

/// Build the metadata a `Put`/`SetMeta` op carries — the exact
/// construction the wire dispatcher uses for `GDPR.PUT`/`GDPR.SETMETA`,
/// so in-process and wire runs stamp identical shadow records.
fn metadata_for(subject: &str, purposes: &[String]) -> PersonalMetadata {
    let mut meta = PersonalMetadata::new(subject);
    for purpose in purposes {
        meta.purposes.insert(purpose.clone());
    }
    meta
}

// ---------------------------------------------------------------------------
// In-process

/// Factory for direct [`GdprStore`] calls under one actor/purpose.
#[derive(Debug, Clone)]
pub struct InProcessFactory {
    store: Arc<GdprStore>,
    actor: String,
    purpose: String,
}

impl InProcessFactory {
    /// Drive `store` as `actor` under `purpose` (a matching grant must be
    /// installed, e.g. via [`crate::spec::BenchSpec::grants`]).
    #[must_use]
    pub fn new(store: Arc<GdprStore>, actor: &str, purpose: &str) -> Self {
        InProcessFactory {
            store,
            actor: actor.to_string(),
            purpose: purpose.to_string(),
        }
    }

    /// Factory authenticated for `role`.
    #[must_use]
    pub fn for_role(store: Arc<GdprStore>, role: Role) -> Self {
        Self::new(store, role.actor(), role.purpose())
    }

    /// Factory authenticated as the load-phase actor.
    #[must_use]
    pub fn for_load(store: Arc<GdprStore>) -> Self {
        Self::new(store, crate::spec::LOAD_ACTOR, crate::spec::LOAD_PURPOSE)
    }
}

impl ClientFactory for InProcessFactory {
    fn connect(&self) -> Result<Box<dyn GdprBenchClient + Send>, String> {
        Ok(Box::new(InProcessClient {
            store: Arc::clone(&self.store),
            ctx: AccessContext::new(&self.actor, &self.purpose),
        }))
    }
}

struct InProcessClient {
    store: Arc<GdprStore>,
    ctx: AccessContext,
}

impl GdprBenchClient for InProcessClient {
    fn apply(&mut self, op: &GdprOp) -> Outcome {
        let store = &self.store;
        let ctx = &self.ctx;
        let result: Result<u64, GdprError> = match op {
            GdprOp::Put {
                key,
                subject,
                purposes,
                value,
            } => store
                .put(ctx, key, value.clone(), metadata_for(subject, purposes))
                .map(|()| 1),
            GdprOp::Read { key } => store.get(ctx, key).map(|v| u64::from(v.is_some())),
            GdprOp::GetMeta { key } => store.metadata(ctx, key).map(|m| u64::from(m.is_some())),
            GdprOp::SetMeta {
                key,
                subject,
                purposes,
            } => store
                .set_metadata(ctx, key, metadata_for(subject, purposes))
                .map(|()| 1),
            GdprOp::KeysOf { subject } => {
                store.keys_of_subject(subject).map(|keys| keys.len() as u64)
            }
            GdprOp::Export { subject } => store
                .right_to_portability(ctx, subject)
                .map(|json| json.len() as u64),
            GdprOp::Erase { subject } => store
                .right_to_erasure(ctx, subject)
                .map(|report| report.erased_keys.len() as u64),
            GdprOp::Object { subject, purpose } => store
                .right_to_object(ctx, subject, purpose)
                .map(|report| report.updated_keys.len() as u64),
            GdprOp::Stats => {
                let _ = store.stats();
                Ok(0)
            }
        };
        match result {
            Ok(n) => Outcome::Ok(n),
            Err(e) => classify_gdpr_error(&e),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire mapping (shared by netsim and TCP)

/// The RESP frame an op travels as.
fn op_frame(op: &GdprOp) -> Frame {
    match op {
        GdprOp::Put {
            key,
            subject,
            purposes,
            value,
        } => GdprRequest::Put {
            key: key.clone(),
            subject: subject.clone(),
            purposes: purposes.clone(),
            value: value.clone(),
            ttl_ms: None,
        }
        .to_frame(),
        GdprOp::Read { key } => Frame::command(["GET", key]),
        GdprOp::GetMeta { key } => GdprRequest::GetMeta { key: key.clone() }.to_frame(),
        GdprOp::SetMeta {
            key,
            subject,
            purposes,
        } => GdprRequest::SetMeta {
            key: key.clone(),
            subject: subject.clone(),
            purposes: purposes.clone(),
            ttl_ms: None,
        }
        .to_frame(),
        GdprOp::KeysOf { subject } => GdprRequest::KeysOf {
            subject: subject.clone(),
        }
        .to_frame(),
        GdprOp::Export { subject } => GdprRequest::Export {
            subject: subject.clone(),
            cursor: None,
            count: None,
        }
        .to_frame(),
        GdprOp::Erase { subject } => GdprRequest::Erase {
            subject: subject.clone(),
        }
        .to_frame(),
        GdprOp::Object { subject, purpose } => GdprRequest::Object {
            subject: subject.clone(),
            purpose: purpose.clone(),
        }
        .to_frame(),
        GdprOp::Stats => GdprRequest::Stats.to_frame(),
    }
}

/// Classify a successful reply frame into the same summary values the
/// in-process client produces.
fn classify_reply(op: &GdprOp, reply: &Frame) -> Outcome {
    match (op, reply) {
        (GdprOp::Put { .. } | GdprOp::SetMeta { .. }, Frame::Simple(_)) => Outcome::Ok(1),
        (GdprOp::Read { .. }, Frame::Bulk(_)) => Outcome::Ok(1),
        (GdprOp::Read { .. } | GdprOp::GetMeta { .. }, Frame::Null) => Outcome::Ok(0),
        (GdprOp::GetMeta { .. }, Frame::Array(_)) => Outcome::Ok(1),
        (GdprOp::KeysOf { .. }, Frame::Array(items)) => Outcome::Ok(items.len() as u64),
        (GdprOp::Export { .. }, Frame::Bulk(json)) => Outcome::Ok(json.len() as u64),
        (GdprOp::Erase { .. } | GdprOp::Object { .. }, Frame::Integer(n)) => {
            Outcome::Ok((*n).max(0) as u64)
        }
        (GdprOp::Stats, Frame::Array(_)) => Outcome::Ok(0),
        _ => Outcome::Failed,
    }
}

/// One wire round trip, normalised: `Ok(frame)` for replies, `Err(msg)`
/// for server error frames, `Err("transport: …")` otherwise.
fn wire_apply<F>(op: &GdprOp, mut roundtrip: F) -> Outcome
where
    F: FnMut(&Frame) -> Result<Frame, WireFailure>,
{
    match roundtrip(&op_frame(op)) {
        Ok(reply) => classify_reply(op, &reply),
        Err(WireFailure::Server(message)) => classify_error_message(&message),
        Err(WireFailure::Transport) => Outcome::Failed,
    }
}

/// A wire-level failure, reduced to what outcome classification needs.
enum WireFailure {
    /// The server answered with a RESP error frame.
    Server(String),
    /// The transport itself failed (socket, protocol, crypto).
    Transport,
}

// ---------------------------------------------------------------------------
// Netsim (simulated network)

/// Factory for connections through the in-process simulated network. Each
/// connection owns a [`RemoteClient`] onto a clone of the shared server
/// (the netsim server models a single logical session, so all clones
/// share session state — re-authentication on connect keeps the last
/// factory's role active, which is exactly right for the sequential
/// phases the differential battery drives).
pub struct NetsimFactory {
    server: RespKvServer,
    link: LinkConfig,
    secret: Option<Vec<u8>>,
    actor: String,
    purpose: String,
}

impl NetsimFactory {
    /// Plaintext-link factory for `role` against `server`.
    #[must_use]
    pub fn new(server: RespKvServer, link: LinkConfig, actor: &str, purpose: &str) -> Self {
        NetsimFactory {
            server,
            link,
            secret: None,
            actor: actor.to_string(),
            purpose: purpose.to_string(),
        }
    }

    /// Factory authenticated for `role`.
    #[must_use]
    pub fn for_role(server: RespKvServer, link: LinkConfig, role: Role) -> Self {
        Self::new(server, link, role.actor(), role.purpose())
    }

    /// Factory authenticated as the load-phase actor.
    #[must_use]
    pub fn for_load(server: RespKvServer, link: LinkConfig) -> Self {
        Self::new(
            server,
            link,
            crate::spec::LOAD_ACTOR,
            crate::spec::LOAD_PURPOSE,
        )
    }

    /// Builder-style: route through the TLS-simulation channel.
    #[must_use]
    pub fn secure(mut self, shared_secret: &[u8]) -> Self {
        self.secret = Some(shared_secret.to_vec());
        self
    }
}

impl ClientFactory for NetsimFactory {
    fn connect(&self) -> Result<Box<dyn GdprBenchClient + Send>, String> {
        let mut inner = match &self.secret {
            Some(secret) => RemoteClient::connect_secure(self.server.clone(), self.link, secret),
            None => RemoteClient::connect_plain(self.server.clone(), self.link),
        };
        let auth = GdprRequest::Auth {
            actor: self.actor.clone(),
            purpose: self.purpose.clone(),
        };
        inner
            .roundtrip(&auth.to_frame())
            .map_err(|e| format!("netsim auth failed: {e}"))?;
        Ok(Box::new(NetsimClient { inner }))
    }
}

struct NetsimClient {
    inner: RemoteClient,
}

impl GdprBenchClient for NetsimClient {
    fn apply(&mut self, op: &GdprOp) -> Outcome {
        let inner = &mut self.inner;
        wire_apply(op, |frame| {
            inner.roundtrip(frame).map_err(|e| match e {
                netsim::NetError::Server(message) => WireFailure::Server(message),
                _ => WireFailure::Transport,
            })
        })
    }
}

// ---------------------------------------------------------------------------
// Live TCP

/// Factory for real socket connections to a running TCP server. Each
/// driver thread gets its own connection, authenticated on connect.
#[derive(Debug, Clone)]
pub struct TcpFactory {
    addr: SocketAddr,
    actor: String,
    purpose: String,
}

impl TcpFactory {
    /// Factory for `actor`/`purpose` against the server at `addr`.
    #[must_use]
    pub fn new(addr: SocketAddr, actor: &str, purpose: &str) -> Self {
        TcpFactory {
            addr,
            actor: actor.to_string(),
            purpose: purpose.to_string(),
        }
    }

    /// Factory authenticated for `role`.
    #[must_use]
    pub fn for_role(addr: SocketAddr, role: Role) -> Self {
        Self::new(addr, role.actor(), role.purpose())
    }

    /// Factory authenticated as the load-phase actor.
    #[must_use]
    pub fn for_load(addr: SocketAddr) -> Self {
        Self::new(addr, crate::spec::LOAD_ACTOR, crate::spec::LOAD_PURPOSE)
    }
}

impl ClientFactory for TcpFactory {
    fn connect(&self) -> Result<Box<dyn GdprBenchClient + Send>, String> {
        let mut inner = TcpRemoteClient::connect(self.addr)
            .map_err(|e| format!("tcp connect to {} failed: {e}", self.addr))?;
        inner
            .auth(&self.actor, &self.purpose)
            .map_err(|e| format!("tcp auth failed: {e}"))?;
        Ok(Box::new(TcpClient { inner }))
    }
}

struct TcpClient {
    inner: TcpRemoteClient,
}

impl GdprBenchClient for TcpClient {
    fn apply(&mut self, op: &GdprOp) -> Outcome {
        let inner = &mut self.inner;
        wire_apply(op, |frame| {
            inner.roundtrip(frame).map_err(|e| match e {
                gdpr_server::ServerError::Server(message) => WireFailure::Server(message),
                _ => WireFailure::Transport,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_message_classification_matches_typed_classification() {
        // The dispatcher renders typed errors as `ERR {Display}`; both
        // classifiers must agree on every compliance-refusal variant.
        let denied = GdprError::AccessDenied {
            actor: "a".into(),
            purpose: "p".into(),
            reason: "no grant".into(),
        };
        assert_eq!(classify_gdpr_error(&denied), Outcome::Denied);
        assert_eq!(
            classify_error_message(&format!("ERR {denied}")),
            Outcome::Denied
        );
        let purpose = GdprError::PurposeViolation {
            key: "k".into(),
            purpose: "marketing".into(),
        };
        assert_eq!(classify_gdpr_error(&purpose), Outcome::Denied);
        assert_eq!(
            classify_error_message(&format!("ERR {purpose}")),
            Outcome::Denied
        );
        let location = GdprError::LocationViolation {
            region: "apac".into(),
        };
        assert_eq!(classify_gdpr_error(&location), Outcome::Denied);
        assert_eq!(
            classify_error_message(&format!("ERR {location}")),
            Outcome::Denied
        );
        let missing = GdprError::NoSuchKey { key: "k".into() };
        assert_eq!(classify_gdpr_error(&missing), Outcome::Failed);
        assert_eq!(
            classify_error_message(&format!("ERR {missing}")),
            Outcome::Failed
        );
        assert_eq!(
            classify_error_message("NOAUTH authenticate with GDPR.AUTH actor purpose first"),
            Outcome::Denied
        );
    }

    #[test]
    fn reply_classification_covers_the_wire_surface() {
        let keysof = GdprOp::KeysOf {
            subject: "s".into(),
        };
        let reply = Frame::Array(vec![
            Frame::Bulk(b"k1".to_vec()),
            Frame::Bulk(b"k2".to_vec()),
        ]);
        assert_eq!(classify_reply(&keysof, &reply), Outcome::Ok(2));
        let read = GdprOp::Read { key: "k".into() };
        assert_eq!(
            classify_reply(&read, &Frame::Bulk(b"v".to_vec())),
            Outcome::Ok(1)
        );
        assert_eq!(classify_reply(&read, &Frame::Null), Outcome::Ok(0));
        let erase = GdprOp::Erase {
            subject: "s".into(),
        };
        assert_eq!(classify_reply(&erase, &Frame::Integer(3)), Outcome::Ok(3));
        let export = GdprOp::Export {
            subject: "s".into(),
        };
        assert_eq!(
            classify_reply(&export, &Frame::Bulk(vec![b'x'; 40])),
            Outcome::Ok(40)
        );
        // A shape mismatch is a failure, never a silent success.
        assert_eq!(classify_reply(&erase, &Frame::Null), Outcome::Failed);
    }
}
