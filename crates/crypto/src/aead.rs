//! The ChaCha20-Poly1305 AEAD construction (RFC 8439 §2.8).
//!
//! This is the unit of encryption used throughout the workspace:
//!
//! * the `kvstore` device layer seals every persisted chunk with it
//!   (simulating LUKS full-disk encryption), and
//! * the `netsim` TLS-proxy simulation seals every wire frame with it
//!   (simulating the Stunnel record layer).

use crate::chacha20::{ChaCha20, KEY_LEN, NONCE_LEN};
use crate::poly1305::{Poly1305, TAG_LEN};
use crate::CryptoError;

/// An authenticated-encryption cipher bound to a long-lived 256-bit key.
///
/// # Example
///
/// ```
/// use gdpr_crypto::aead::ChaCha20Poly1305;
///
/// # fn main() -> Result<(), gdpr_crypto::CryptoError> {
/// let aead = ChaCha20Poly1305::new(&[0x42; 32]);
/// let sealed = aead.seal(&[0; 12], b"aad", b"plaintext");
/// assert_eq!(aead.open(&[0; 12], b"aad", &sealed)?, b"plaintext");
/// assert!(aead.open(&[0; 12], b"wrong aad", &sealed).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; KEY_LEN],
}

impl ChaCha20Poly1305 {
    /// Length of the appended authentication tag in bytes.
    pub const TAG_LEN: usize = TAG_LEN;
    /// Length of the nonce in bytes.
    pub const NONCE_LEN: usize = NONCE_LEN;

    /// Create an AEAD instance from a 256-bit key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        ChaCha20Poly1305 { key: *key }
    }

    /// Derive the Poly1305 one-time key for a nonce (keystream block 0).
    fn one_time_key(&self, nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
        let mut cipher = ChaCha20::new(&self.key, nonce, 0);
        let bytes = cipher.keystream_bytes(32);
        let mut key = [0u8; 32];
        key.copy_from_slice(&bytes);
        key
    }

    /// Encrypt `plaintext`, authenticating `aad` alongside it. Returns
    /// `ciphertext || tag`.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        ChaCha20::new(&self.key, nonce, 1).apply_keystream(&mut out);
        let tag = self.compute_tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypt `sealed` (as produced by [`Self::seal`]), verifying the tag
    /// and the associated data.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::TruncatedCiphertext`] if `sealed` is shorter
    /// than a tag, and [`CryptoError::TagMismatch`] if authentication fails.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::TruncatedCiphertext {
                got: sealed.len(),
                need: TAG_LEN,
            });
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.compute_tag(nonce, aad, ciphertext);
        if !crate::constant_time_eq(&expected, tag) {
            return Err(CryptoError::TagMismatch);
        }
        let mut out = ciphertext.to_vec();
        ChaCha20::new(&self.key, nonce, 1).apply_keystream(&mut out);
        Ok(out)
    }

    /// RFC 8439 tag computation: Poly1305 over `aad || pad || ct || pad ||
    /// len(aad) || len(ct)`.
    fn compute_tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let otk = self.one_time_key(nonce);
        let mut mac = Poly1305::new(&otk);
        mac.update(aad);
        mac.update(&zero_pad(aad.len()));
        mac.update(ciphertext);
        mac.update(&zero_pad(ciphertext.len()));
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }
}

/// Zero padding to the next 16-byte boundary, as required by the AEAD MAC.
fn zero_pad(len: usize) -> Vec<u8> {
    let rem = len % 16;
    if rem == 0 {
        Vec::new()
    } else {
        vec![0u8; 16 - rem]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(hex: &str) -> Vec<u8> {
        let hex: String = hex.chars().filter(|c| !c.is_whitespace()).collect();
        (0..hex.len() / 2)
            .map(|i| u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| 0x80 + i as u8);
        let nonce: [u8; 12] = [
            0x07, 0, 0, 0, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
        ];
        let aad = hex_to_bytes("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";

        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, &aad, plaintext);
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(
            crate::sha256::to_hex(&ct[..16]),
            "d31a8d34648e60db7b86afbc53ef7ec2"
        );
        assert_eq!(
            crate::sha256::to_hex(tag),
            "1ae10b594f09e26a7e902ecbd0600691"
        );
        assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), plaintext);
    }

    #[test]
    fn roundtrip_various_sizes() {
        let aead = ChaCha20Poly1305::new(&[7u8; 32]);
        for size in [0usize, 1, 15, 16, 17, 63, 64, 65, 1000] {
            let plaintext = vec![0xa5u8; size];
            let nonce = [size as u8; 12];
            let sealed = aead.seal(&nonce, b"hdr", &plaintext);
            assert_eq!(sealed.len(), size + TAG_LEN);
            assert_eq!(aead.open(&nonce, b"hdr", &sealed).unwrap(), plaintext);
        }
    }

    #[test]
    fn tamper_detection() {
        let aead = ChaCha20Poly1305::new(&[7u8; 32]);
        let mut sealed = aead.seal(&[0u8; 12], b"", b"some personal data");
        sealed[3] ^= 0x01;
        assert_eq!(
            aead.open(&[0u8; 12], b"", &sealed),
            Err(CryptoError::TagMismatch)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let sealed = ChaCha20Poly1305::new(&[1u8; 32]).seal(&[0u8; 12], b"", b"data");
        assert!(ChaCha20Poly1305::new(&[2u8; 32])
            .open(&[0u8; 12], b"", &sealed)
            .is_err());
    }

    #[test]
    fn wrong_nonce_fails() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        let sealed = aead.seal(&[0u8; 12], b"", b"data");
        assert!(aead.open(&[1u8; 12], b"", &sealed).is_err());
    }

    #[test]
    fn truncated_ciphertext_is_reported() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        assert_eq!(
            aead.open(&[0u8; 12], b"", &[1, 2, 3]),
            Err(CryptoError::TruncatedCiphertext {
                got: 3,
                need: TAG_LEN
            })
        );
    }
}
