//! The value/object model of the engine.
//!
//! Like Redis, every key maps to a typed [`Value`]. The reproduction only
//! needs the types exercised by YCSB and by the GDPR layer (strings and
//! hashes carry the data, lists and sets are included for completeness of
//! the command surface and for the metadata indexes of `gdpr-core`).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Raw byte payload stored under a key or hash field.
pub type Bytes = Vec<u8>;

/// Fixed per-key bookkeeping overhead charged by the memory accounting, in
/// bytes. A stored key costs more than its payload: the key string is held
/// by the dictionary, the sorted-keys index and the sampling pools, and the
/// [`Object`] header (access time, version, enum tag) rides along. The
/// constant is a deliberate round number in the right ballpark — the gauge
/// must track RSS *direction* under churn, not malloc's exact arithmetic.
pub const PER_KEY_OVERHEAD: usize = 64;

/// Approximate resident footprint of one keyspace entry: the fixed
/// per-key overhead, the key bytes and the value payload. This is the
/// quantity the per-shard `mem_bytes` gauge sums and `maxmemory`
/// eviction budgets against.
#[must_use]
pub fn entry_footprint(key: &str, value: &Value) -> usize {
    PER_KEY_OVERHEAD + key.len() + value.approximate_size()
}

/// A typed value stored under a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A binary-safe string (the default YCSB record encoding).
    Str(Bytes),
    /// A field → value map (used for multi-field YCSB records and for the
    /// GDPR per-key metadata shadow records).
    Hash(BTreeMap<String, Bytes>),
    /// An ordered list.
    List(VecDeque<Bytes>),
    /// An unordered set of unique members.
    Set(BTreeSet<Bytes>),
}

impl Value {
    /// Human-readable type name, mirroring the Redis `TYPE` command.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Hash(_) => "hash",
            Value::List(_) => "list",
            Value::Set(_) => "set",
        }
    }

    /// Approximate memory footprint in bytes (used by `INFO`-style stats
    /// and by the GDPR export size accounting).
    #[must_use]
    pub fn approximate_size(&self) -> usize {
        match self {
            Value::Str(b) => b.len(),
            Value::Hash(map) => map.iter().map(|(k, v)| k.len() + v.len()).sum(),
            Value::List(items) => items.iter().map(Vec::len).sum(),
            Value::Set(members) => members.iter().map(Vec::len).sum(),
        }
    }

    /// Number of elements: 1 for a string, the cardinality otherwise.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Value::Str(_) => 1,
            Value::Hash(map) => map.len(),
            Value::List(items) => items.len(),
            Value::Set(members) => members.len(),
        }
    }

    /// Whether the container value holds no elements (a string is never
    /// considered empty for this purpose, matching Redis semantics where
    /// empty aggregates are removed but empty strings may exist).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match self {
            Value::Str(_) => false,
            Value::Hash(map) => map.is_empty(),
            Value::List(items) => items.is_empty(),
            Value::Set(members) => members.is_empty(),
        }
    }
}

impl From<Bytes> for Value {
    fn from(b: Bytes) -> Self {
        Value::Str(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.as_bytes().to_vec())
    }
}

/// A stored object: the value plus bookkeeping the engine needs.
///
/// Redis attaches an LRU/LFU field and an encoding to every `robj`; we keep
/// the pieces that matter for the paper's experiments (access tracking for
/// the audit path and a version counter used by the AOF rewrite to detect
/// concurrent mutation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// The stored value.
    pub value: Value,
    /// Milliseconds timestamp of the last access (read or write).
    pub last_access_ms: u64,
    /// Monotonically increasing per-key version, bumped on every write.
    pub version: u64,
}

impl Object {
    /// Wrap a value into an object created at `now_ms`.
    #[must_use]
    pub fn new(value: Value, now_ms: u64) -> Self {
        Object {
            value,
            last_access_ms: now_ms,
            version: 1,
        }
    }

    /// Record a read access.
    pub fn touch(&mut self, now_ms: u64) {
        self.last_access_ms = now_ms;
    }

    /// Record a write: bumps the version and the access time.
    pub fn mark_written(&mut self, now_ms: u64) {
        self.last_access_ms = now_ms;
        self.version += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::from("x").type_name(), "string");
        assert_eq!(Value::Hash(BTreeMap::new()).type_name(), "hash");
        assert_eq!(Value::List(VecDeque::new()).type_name(), "list");
        assert_eq!(Value::Set(BTreeSet::new()).type_name(), "set");
    }

    #[test]
    fn approximate_size_counts_payload_bytes() {
        assert_eq!(Value::from("abcd").approximate_size(), 4);
        let mut h = BTreeMap::new();
        h.insert("field".to_string(), b"value".to_vec());
        assert_eq!(Value::Hash(h).approximate_size(), 10);
    }

    #[test]
    fn entry_footprint_charges_overhead_key_and_payload() {
        // The formula is pinned: overhead + key bytes + payload bytes.
        let v = Value::from("abcd");
        assert_eq!(entry_footprint("k", &v), PER_KEY_OVERHEAD + 1 + 4);
        assert_eq!(
            entry_footprint("user:alice:email", &v),
            PER_KEY_OVERHEAD + 16 + 4
        );
        // Container payloads count member bytes, same as approximate_size.
        let mut h = BTreeMap::new();
        h.insert("field".to_string(), b"value".to_vec());
        let hv = Value::Hash(h);
        assert_eq!(entry_footprint("h", &hv), PER_KEY_OVERHEAD + 1 + 10);
        // An empty string still costs its bookkeeping.
        assert_eq!(entry_footprint("e", &Value::from("")), PER_KEY_OVERHEAD + 1);
    }

    #[test]
    fn len_and_is_empty() {
        assert_eq!(Value::from("abc").len(), 1);
        assert!(!Value::from("").is_empty());
        let mut h = BTreeMap::new();
        assert!(Value::Hash(h.clone()).is_empty());
        h.insert("f".into(), vec![1]);
        let v = Value::Hash(h);
        assert_eq!(v.len(), 1);
        assert!(!v.is_empty());
    }

    #[test]
    fn object_versioning() {
        let mut o = Object::new(Value::from("v"), 100);
        assert_eq!(o.version, 1);
        o.touch(150);
        assert_eq!(o.version, 1);
        assert_eq!(o.last_access_ms, 150);
        o.mark_written(200);
        assert_eq!(o.version, 2);
        assert_eq!(o.last_access_ms, 200);
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(vec![1u8, 2]), Value::Str(vec![1, 2]));
        assert_eq!(Value::from("hi"), Value::Str(b"hi".to_vec()));
    }
}
