//! The differential/property battery pinning the timer wheel to the BTree
//! deadline index's semantics:
//!
//! * a proptest drives the wheel, the BTree index and a plain `BTreeMap`
//!   model with random insert/reschedule/remove/advance sequences
//!   (same-tick reschedules, deadlines in the past and far-future
//!   overflow deadlines included) — the fired key sets of every advance
//!   must be identical across all three (the wheel fires in slot order,
//!   so outputs are canonicalised by sorting before comparison);
//! * the Figure 2 `ErasureSimulator` experiment and `run_expire_cycle`
//!   strict mode are replayed with both `DeadlineIndex` implementations —
//!   removed-key lists and `CycleOutcome` counters must match exactly at
//!   every tick;
//! * regressions: a TTL overwrite must not fire at its stale deadline,
//!   and lazy-mode sampling behaves identically on both indexes.

use std::collections::BTreeMap;
use std::sync::Arc;

use gdpr_storage::gdpr_core::retention::ErasureDelayExperiment;
use gdpr_storage::kvstore::clock::SimClock;
use gdpr_storage::kvstore::config::StoreConfig;
use gdpr_storage::kvstore::db::Db;
use gdpr_storage::kvstore::expire::{run_expire_cycle, ActiveExpireConfig, ExpiryMode};
use gdpr_storage::kvstore::store::KvStore;
use gdpr_storage::kvstore::ttl_wheel::{build_deadline_index, DeadlineIndexKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const START: u64 = 1_000_000;

/// One step of a random index history. Deadline offsets are relative to
/// the *current* simulated time, and may be negative (already overdue).
#[derive(Debug, Clone)]
enum IndexOp {
    /// Upsert key `k` at `now + offset` (an existing deadline makes this a
    /// reschedule; repeating it without an advance is a same-tick
    /// reschedule).
    Insert(u8, i64),
    /// Upsert key `k` beyond the wheel's top-level horizon (overflow).
    InsertFar(u8, u32),
    /// Forget key `k`'s deadline.
    Remove(u8),
    /// Advance time by `step` ms (0 = another advance within the same
    /// tick) and fire everything due.
    Advance(u16),
}

fn op_strategy() -> impl Strategy<Value = IndexOp> {
    prop_oneof![
        (0u8..24, -400i64..4_000).prop_map(|(k, off)| IndexOp::Insert(k, off)),
        (0u8..24, any::<u32>()).prop_map(|(k, off)| IndexOp::InsertFar(k, off)),
        (0u8..24).prop_map(IndexOp::Remove),
        (0u16..700).prop_map(IndexOp::Advance),
    ]
}

/// Canonical order for comparing fired sets across implementations.
fn sorted(mut keys: Vec<String>) -> Vec<String> {
    keys.sort();
    keys
}

/// What the model says must fire at `now`: every key with `at <= now`,
/// in canonical (sorted) order.
fn model_fire(model: &mut BTreeMap<String, u64>, now: u64) -> Vec<String> {
    let due: Vec<String> = model
        .iter()
        .filter(|(_, &at)| at <= now)
        .map(|(k, _)| k.clone())
        .collect();
    for key in &due {
        model.remove(key);
    }
    due
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Wheel, BTree index and model map agree on every advance's fired
    /// set and on the live-entry count after every operation.
    #[test]
    fn wheel_and_btree_match_model_under_random_histories(
        ops in proptest::collection::vec(op_strategy(), 1..250),
    ) {
        // Beyond the top wheel level (≈ 2^32 ms) entries go to overflow.
        let far_horizon: u64 = 1 << 32;
        let mut wheel = build_deadline_index(DeadlineIndexKind::Wheel, START);
        let mut btree = build_deadline_index(DeadlineIndexKind::BTree, START);
        let mut model: BTreeMap<String, u64> = BTreeMap::new();
        let mut now = START;

        for op in &ops {
            match op {
                IndexOp::Insert(k, off) => {
                    let key = format!("key{k:02}");
                    let at = now.saturating_add_signed(*off);
                    wheel.insert(&key, at);
                    btree.insert(&key, at);
                    model.insert(key, at);
                }
                IndexOp::InsertFar(k, off) => {
                    let key = format!("key{k:02}");
                    let at = now + far_horizon + u64::from(*off);
                    wheel.insert(&key, at);
                    btree.insert(&key, at);
                    model.insert(key, at);
                }
                IndexOp::Remove(k) => {
                    let key = format!("key{k:02}");
                    wheel.remove(&key);
                    btree.remove(&key);
                    model.remove(&key);
                }
                IndexOp::Advance(step) => {
                    now += u64::from(*step);
                    let expected = model_fire(&mut model, now);
                    let fired_wheel = sorted(wheel.advance(now));
                    let fired_btree = sorted(btree.advance(now));
                    prop_assert_eq!(&fired_wheel, &expected);
                    prop_assert_eq!(&fired_btree, &expected);
                    // Nothing may stay overdue after an advance.
                    prop_assert_eq!(wheel.pending_expired(now), 0);
                }
            }
            prop_assert_eq!(wheel.len(), model.len());
            prop_assert_eq!(btree.len(), model.len());
        }

        // Final drain far past every deadline (including overflow).
        now += 2 * far_horizon;
        let expected = model_fire(&mut model, now);
        prop_assert_eq!(sorted(wheel.advance(now)), expected.clone());
        prop_assert_eq!(sorted(btree.advance(now)), expected);
        prop_assert!(wheel.is_empty());
        prop_assert!(btree.is_empty());
    }
}

/// Build a Db on the given index with a mixed TTL population, including
/// reschedules (stale deadlines) and deletions (removed deadlines).
fn populated_db(kind: DeadlineIndexKind) -> (Db, SimClock) {
    let clock = SimClock::new(START);
    let mut db = Db::with_deadline_index(Arc::new(clock.clone()), kind);
    for i in 0..2_000u64 {
        let key = format!("key{i:04}");
        db.set(&key, vec![0u8; 8]);
        db.expire_in_millis(&key, (i * 37) % 5_000 + 1);
        if i % 5 == 0 {
            // Rescheduled: the original deadline must never fire.
            db.expire_in_millis(&key, (i * 53) % 7_000 + 500);
        }
        if i % 7 == 0 {
            // Deleted: its deadline entry must never fire either.
            db.delete(&key);
        }
    }
    (db, clock)
}

#[test]
fn strict_cycle_outcomes_match_at_every_tick() {
    let (mut wheel_db, wheel_clock) = populated_db(DeadlineIndexKind::Wheel);
    let (mut btree_db, btree_clock) = populated_db(DeadlineIndexKind::BTree);
    let config = ActiveExpireConfig::default();
    let mut rng_w = StdRng::seed_from_u64(11);
    let mut rng_b = StdRng::seed_from_u64(11);

    let mut total_removed = 0;
    for tick in 0..80 {
        wheel_clock.advance_millis(config.period_ms);
        btree_clock.advance_millis(config.period_ms);
        let mut wheel_out =
            run_expire_cycle(&mut wheel_db, ExpiryMode::Strict, &config, &mut rng_w);
        let mut btree_out =
            run_expire_cycle(&mut btree_db, ExpiryMode::Strict, &config, &mut rng_b);
        // The wheel fires in slot order: canonicalise before the exact
        // CycleOutcome comparison (counters must already agree).
        wheel_out.removed.sort();
        btree_out.removed.sort();
        assert_eq!(wheel_out, btree_out, "CycleOutcome diverged at tick {tick}");
        total_removed += wheel_out.removed.len();
        assert_eq!(wheel_db.pending_expired_len(), 0);
        assert_eq!(btree_db.pending_expired_len(), 0);
        assert_eq!(wheel_db.len(), btree_db.len());
        assert_eq!(wheel_db.expires_len(), btree_db.expires_len());
    }
    assert!(total_removed > 1_000, "the population must actually expire");
    assert_eq!(wheel_db.len(), 0, "everything TTL'd eventually goes");
}

#[test]
fn lazy_cycles_match_with_identical_seeds() {
    // The probabilistic sampler reads the shared sample pool, not the
    // deadline index — with the same seed both stores must remove the
    // same keys, proving the index swap leaves lazy mode untouched.
    let (mut wheel_db, wheel_clock) = populated_db(DeadlineIndexKind::Wheel);
    let (mut btree_db, btree_clock) = populated_db(DeadlineIndexKind::BTree);
    let config = ActiveExpireConfig::default();
    let mut rng_w = StdRng::seed_from_u64(23);
    let mut rng_b = StdRng::seed_from_u64(23);

    for _ in 0..50 {
        wheel_clock.advance_millis(config.period_ms);
        btree_clock.advance_millis(config.period_ms);
        let wheel_out = run_expire_cycle(
            &mut wheel_db,
            ExpiryMode::LazyProbabilistic,
            &config,
            &mut rng_w,
        );
        let btree_out = run_expire_cycle(
            &mut btree_db,
            ExpiryMode::LazyProbabilistic,
            &config,
            &mut rng_b,
        );
        assert_eq!(wheel_out, btree_out);
        assert_eq!(
            wheel_db.pending_expired_len(),
            btree_db.pending_expired_len()
        );
    }
}

#[test]
fn figure2_erasure_simulator_reports_are_identical() {
    for mode in [ExpiryMode::Strict, ExpiryMode::LazyProbabilistic] {
        let wheel = ErasureDelayExperiment::figure2(4_000, mode)
            .with_index(DeadlineIndexKind::Wheel)
            .run(7);
        let btree = ErasureDelayExperiment::figure2(4_000, mode)
            .with_index(DeadlineIndexKind::BTree)
            .run(7);
        assert_eq!(
            wheel, btree,
            "Figure 2 replay diverged between indexes under {mode:?}"
        );
        assert_eq!(wheel.erased_keys, 800);
    }
    // And the paper's headline still holds on the wheel: strict is
    // sub-second, lazy is not.
    let strict = ErasureDelayExperiment::figure2(4_000, ExpiryMode::Strict).run(7);
    let lazy = ErasureDelayExperiment::figure2(4_000, ExpiryMode::LazyProbabilistic).run(7);
    assert!(strict.erase_seconds() < 1.0);
    assert!(lazy.erase_seconds() > 30.0);
}

#[test]
fn ttl_overwrite_must_not_fire_at_stale_deadline() {
    for kind in [DeadlineIndexKind::Wheel, DeadlineIndexKind::BTree] {
        let clock = SimClock::new(START);
        let store = KvStore::open(
            StoreConfig::in_memory()
                .clock(clock.clone())
                .deadline_index(kind)
                .expiry_mode(ExpiryMode::Strict),
        )
        .unwrap();
        store.set("k", b"v".to_vec()).unwrap();
        store.expire_at("k", START + 100).unwrap();
        store.expire_at("k", START + 100_000).unwrap();
        clock.advance_millis(1_000); // past the stale deadline only
        let outcome = store.tick().unwrap();
        assert!(
            outcome.removed.is_empty(),
            "{kind:?}: stale deadline fired: {:?}",
            outcome.removed
        );
        assert_eq!(store.get("k").unwrap(), Some(b"v".to_vec()));
        let ttl = store.ttl("k").unwrap().expect("TTL survives");
        assert_eq!(ttl.as_millis() as u64, 100_000 - 1_000);
        // The rewritten (later) deadline still fires on time.
        clock.advance_millis(100_000);
        let outcome = store.tick().unwrap();
        assert_eq!(outcome.removed, vec!["k".to_string()], "{kind:?}");
    }
}

#[test]
fn persist_then_reexpire_fires_only_the_new_deadline() {
    for kind in [DeadlineIndexKind::Wheel, DeadlineIndexKind::BTree] {
        let clock = SimClock::new(START);
        let mut db = Db::with_deadline_index(Arc::new(clock.clone()), kind);
        db.set("k", b"v".to_vec());
        db.expire_in_millis("k", 200);
        assert!(db.persist("k"));
        clock.advance_millis(1_000);
        assert!(db.strict_expire_sweep().is_empty(), "{kind:?}");
        assert!(db.exists("k"));
        db.expire_in_millis("k", 500);
        clock.advance_millis(501);
        assert_eq!(db.strict_expire_sweep(), vec!["k".to_string()], "{kind:?}");
        assert_eq!(db.stats().expired_keys, 1);
    }
}

#[test]
fn sharded_store_outcomes_match_between_indexes() {
    // The engine-level differential: same workload on a 4-shard store
    // with each index; every tick's merged removals must agree (ticks
    // visit shards in order, and each shard fires in (deadline, key)
    // order, so the merged lists are directly comparable).
    let run = |kind: DeadlineIndexKind| {
        let clock = SimClock::new(START);
        let store = KvStore::open(
            StoreConfig::in_memory()
                .shards(4)
                .clock(clock.clone())
                .deadline_index(kind)
                .expiry_mode(ExpiryMode::Strict),
        )
        .unwrap();
        for i in 0..600u64 {
            let key = format!("user{i:03}");
            store.set(&key, vec![1]).unwrap();
            store.expire_at(&key, START + (i * 13) % 3_000 + 1).unwrap();
            if i % 4 == 0 {
                store.expire_at(&key, START + (i * 29) % 4_000 + 1).unwrap();
            }
            if i % 9 == 0 {
                store.delete(&key).unwrap();
            }
        }
        let mut per_tick = Vec::new();
        for _ in 0..45 {
            clock.advance_millis(100);
            let mut outcome = store.tick().unwrap();
            outcome.removed.sort();
            per_tick.push(outcome);
        }
        assert_eq!(store.pending_expired(), 0);
        (per_tick, store.len())
    };
    let (wheel_ticks, wheel_len) = run(DeadlineIndexKind::Wheel);
    let (btree_ticks, btree_len) = run(DeadlineIndexKind::BTree);
    assert_eq!(wheel_ticks, btree_ticks);
    assert_eq!(wheel_len, btree_len);
}

#[test]
fn wheel_store_surfaces_wheel_stats() {
    let clock = SimClock::new(START);
    // Pinned to the wheel regardless of the GDPR_TTL_INDEX matrix: the
    // assertions below are about the wheel's own counters.
    let store = KvStore::open(
        StoreConfig::in_memory()
            .shards(2)
            .clock(clock.clone())
            .expiry_mode(ExpiryMode::Strict)
            .deadline_index(DeadlineIndexKind::Wheel),
    )
    .unwrap();
    for i in 0..100u64 {
        let key = format!("k{i:02}");
        store.set(&key, vec![0]).unwrap();
        store
            .expire_in(&key, std::time::Duration::from_millis(70_000))
            .unwrap();
        store
            .expire_in(&key, std::time::Duration::from_millis(90_000))
            .unwrap();
    }
    let stats = store.stats().deadline_index;
    assert_eq!(stats.kind, DeadlineIndexKind::Wheel);
    assert_eq!(stats.entries, 100);
    assert_eq!(stats.inserts, 100);
    assert_eq!(stats.reschedules, 100);
    assert_eq!(
        stats.level_entries.iter().sum::<u64>(),
        200,
        "100 live + 100 stale parked"
    );
    assert!(store.stats().render().contains("deadline_index:wheel"));

    clock.advance_millis(91_000);
    let outcome = store.tick().unwrap();
    assert_eq!(outcome.removed.len(), 100);
    let stats = store.stats().deadline_index;
    assert_eq!(stats.fired, 100);
    assert_eq!(stats.stale_dropped, 100, "every stale reschedule dropped");
    assert_eq!(stats.entries, 0);
}
