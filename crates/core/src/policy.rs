//! The compliance spectrum (§3.2 of the paper) as configuration.
//!
//! The paper's central observation is that GDPR compliance is not a fixed
//! target but a spectrum along two axes:
//!
//! * **response time** — *real-time* compliance performs the GDPR task
//!   (logging, deleting, answering a subject request) synchronously;
//!   *eventual* compliance batches it and accepts a bounded lag;
//! * **capability** — *full* compliance supports a feature natively,
//!   *partial* compliance leans on external infrastructure or policy.
//!
//! [`CompliancePolicy`] states where a deployment sits on both axes for
//! each of the six storage features, and the presets reproduce the exact
//! configurations measured in Figure 1.

use audit::policy::FlushPolicy;
use kvstore::aof::FsyncPolicy;
use kvstore::expire::ExpiryMode;

use crate::location::LocationPolicy;

/// How quickly a GDPR task is completed (the paper's real-time vs eventual
/// distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseMode {
    /// Synchronously, before the triggering operation is acknowledged.
    RealTime,
    /// Asynchronously, within the given lag bound (milliseconds).
    Eventual {
        /// Maximum acceptable lag in milliseconds.
        lag_ms: u64,
    },
}

impl ResponseMode {
    /// Whether this is the strict end of the spectrum.
    #[must_use]
    pub fn is_real_time(&self) -> bool {
        matches!(self, ResponseMode::RealTime)
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ResponseMode::RealTime => "real-time".to_string(),
            ResponseMode::Eventual { lag_ms } => format!("eventual (≤{lag_ms} ms)"),
        }
    }
}

/// How completely a feature is supported (the paper's full vs partial
/// distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SupportLevel {
    /// Not supported at all.
    None,
    /// Supported only with external infrastructure or manual policy.
    Partial,
    /// Supported natively by the storage system.
    Full,
}

impl SupportLevel {
    /// Human-readable label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SupportLevel::None => "none",
            SupportLevel::Partial => "partial",
            SupportLevel::Full => "full",
        }
    }
}

/// Full configuration of the compliance layer.
#[derive(Debug, Clone, PartialEq)]
pub struct CompliancePolicy {
    /// Short name used in benchmark output ("unmodified", "strict", …).
    pub name: String,

    // ---- monitoring & logging (Art. 30/33/34) ----
    /// Whether every interaction (including reads) is audited.
    pub monitor_all_operations: bool,
    /// How the audit trail is flushed.
    pub audit_flush: FlushPolicy,
    /// Whether audit records are hash-chained for tamper evidence.
    pub audit_chaining: bool,

    // ---- timely deletion (Art. 5/13/17) ----
    /// How expired data is erased.
    pub expiry_mode: ExpiryMode,
    /// Response mode for erasure requests (right to be forgotten).
    pub erasure_response: ResponseMode,
    /// Whether deleted data must also be scrubbed from the AOF promptly
    /// (per-deletion compaction) rather than waiting for a periodic rewrite.
    pub scrub_aof_on_erasure: bool,

    // ---- persistence / encryption at rest (Art. 32) ----
    /// Whether the engine journals writes at all.
    pub journal_writes: bool,
    /// Fsync policy for the engine journal.
    pub journal_fsync: FsyncPolicy,
    /// Encrypt everything persisted to the device (LUKS simulation).
    pub encrypt_at_rest: bool,
    /// Encrypt client/server traffic (TLS simulation); consumed by the
    /// benchmark harness when it builds the network path.
    pub encrypt_in_transit: bool,

    // ---- access control & purpose limitation (Art. 5/21/25/32) ----
    /// Enforce actor/purpose grants on every operation.
    pub enforce_access_control: bool,
    /// Enforce the per-key purpose whitelist and objections.
    pub enforce_purpose_limitation: bool,

    // ---- metadata indexing (Art. 15/20) ----
    /// Maintain subject/purpose secondary indexes for timely rights
    /// handling.
    pub maintain_indexes: bool,

    // ---- data location (Art. 46) ----
    /// Placement restrictions.
    pub location_policy: LocationPolicy,
}

impl CompliancePolicy {
    /// The unmodified baseline: no GDPR features at all (stock engine,
    /// no persistence). This is Figure 1's "Unmodified" configuration.
    #[must_use]
    pub fn unmodified() -> Self {
        CompliancePolicy {
            name: "unmodified".into(),
            monitor_all_operations: false,
            audit_flush: FlushPolicy::Manual,
            audit_chaining: false,
            expiry_mode: ExpiryMode::LazyProbabilistic,
            erasure_response: ResponseMode::Eventual {
                lag_ms: 6 * 30 * 24 * 3600 * 1000,
            },
            scrub_aof_on_erasure: false,
            journal_writes: false,
            journal_fsync: FsyncPolicy::EverySec,
            encrypt_at_rest: false,
            encrypt_in_transit: false,
            enforce_access_control: false,
            enforce_purpose_limitation: false,
            maintain_indexes: false,
            location_policy: LocationPolicy::unrestricted(),
        }
    }

    /// Eventual compliance: every feature on, but logging batched once per
    /// second, lazy AOF scrubbing and eventual erasure. The paper's
    /// "AOF w/ everysec"-style relaxed point.
    #[must_use]
    pub fn eventual() -> Self {
        CompliancePolicy {
            name: "eventual".into(),
            monitor_all_operations: true,
            audit_flush: FlushPolicy::every_second(),
            audit_chaining: true,
            expiry_mode: ExpiryMode::Strict,
            erasure_response: ResponseMode::Eventual { lag_ms: 3_600_000 },
            scrub_aof_on_erasure: false,
            journal_writes: true,
            journal_fsync: FsyncPolicy::EverySec,
            encrypt_at_rest: true,
            encrypt_in_transit: true,
            enforce_access_control: true,
            enforce_purpose_limitation: true,
            maintain_indexes: true,
            location_policy: LocationPolicy::eu_only(),
        }
    }

    /// Strict compliance: real-time everything — synchronous audit fsync,
    /// strict expiry, immediate AOF scrubbing, encryption everywhere. The
    /// paper's "AOF w/ sync" + "LUKS + TLS" end of the spectrum.
    #[must_use]
    pub fn strict() -> Self {
        CompliancePolicy {
            name: "strict".into(),
            monitor_all_operations: true,
            audit_flush: FlushPolicy::real_time(),
            audit_chaining: true,
            expiry_mode: ExpiryMode::Strict,
            erasure_response: ResponseMode::RealTime,
            scrub_aof_on_erasure: true,
            journal_writes: true,
            journal_fsync: FsyncPolicy::Always,
            encrypt_at_rest: true,
            encrypt_in_transit: true,
            enforce_access_control: true,
            enforce_purpose_limitation: true,
            maintain_indexes: true,
            location_policy: LocationPolicy::eu_only(),
        }
    }

    /// Builder-style: rename the policy (useful for benchmark variants).
    #[must_use]
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Whether every feature operates in real time (the paper's definition
    /// of *strict* compliance = full + real-time).
    #[must_use]
    pub fn is_strict(&self) -> bool {
        self.monitor_all_operations
            && self.audit_flush.is_real_time()
            && self.expiry_mode == ExpiryMode::Strict
            && self.erasure_response.is_real_time()
            && self.scrub_aof_on_erasure
            && self.encrypt_at_rest
            && self.encrypt_in_transit
            && self.enforce_access_control
            && self.enforce_purpose_limitation
            && self.maintain_indexes
    }

    /// Per-feature support level, used by the Table 1 self-assessment.
    #[must_use]
    pub fn support_levels(&self) -> Vec<(&'static str, SupportLevel)> {
        vec![
            (
                "Timely deletion",
                match self.expiry_mode {
                    ExpiryMode::Strict => SupportLevel::Full,
                    ExpiryMode::LazyProbabilistic => SupportLevel::Partial,
                    ExpiryMode::AccessOnly => SupportLevel::None,
                },
            ),
            (
                "Monitoring & logging",
                if self.monitor_all_operations {
                    SupportLevel::Full
                } else if self.journal_writes {
                    SupportLevel::Partial
                } else {
                    SupportLevel::None
                },
            ),
            (
                "Metadata indexing",
                if self.maintain_indexes {
                    SupportLevel::Full
                } else {
                    SupportLevel::Partial
                },
            ),
            (
                "Access control",
                if self.enforce_access_control && self.enforce_purpose_limitation {
                    SupportLevel::Full
                } else if self.enforce_access_control {
                    SupportLevel::Partial
                } else {
                    SupportLevel::None
                },
            ),
            (
                "Encryption",
                match (self.encrypt_at_rest, self.encrypt_in_transit) {
                    (true, true) => SupportLevel::Full,
                    (false, false) => SupportLevel::None,
                    _ => SupportLevel::Partial,
                },
            ),
            (
                "Manage data location",
                if self.location_policy.is_unrestricted() {
                    SupportLevel::Partial
                } else {
                    SupportLevel::Full
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sit_where_expected_on_the_spectrum() {
        assert!(!CompliancePolicy::unmodified().is_strict());
        assert!(!CompliancePolicy::eventual().is_strict());
        assert!(CompliancePolicy::strict().is_strict());
    }

    #[test]
    fn unmodified_supports_little() {
        let levels = CompliancePolicy::unmodified().support_levels();
        let encryption = levels.iter().find(|(f, _)| *f == "Encryption").unwrap().1;
        assert_eq!(encryption, SupportLevel::None);
        let deletion = levels
            .iter()
            .find(|(f, _)| *f == "Timely deletion")
            .unwrap()
            .1;
        assert_eq!(
            deletion,
            SupportLevel::Partial,
            "lazy expiry is only partial support"
        );
    }

    #[test]
    fn strict_supports_everything_fully() {
        let levels = CompliancePolicy::strict().support_levels();
        assert!(
            levels.iter().all(|(_, l)| *l == SupportLevel::Full),
            "{levels:?}"
        );
        assert_eq!(levels.len(), 6, "the paper's six features");
    }

    #[test]
    fn response_mode_labels() {
        assert!(ResponseMode::RealTime.is_real_time());
        assert!(!(ResponseMode::Eventual { lag_ms: 5 }).is_real_time());
        assert!(ResponseMode::RealTime.label().contains("real"));
        assert!((ResponseMode::Eventual { lag_ms: 5 }).label().contains('5'));
    }

    #[test]
    fn support_levels_order() {
        assert!(SupportLevel::Full > SupportLevel::Partial);
        assert!(SupportLevel::Partial > SupportLevel::None);
        assert_eq!(SupportLevel::Full.label(), "full");
    }

    #[test]
    fn named_builder_changes_only_the_name() {
        let p = CompliancePolicy::strict().named("strict-variant");
        assert_eq!(p.name, "strict-variant");
        assert!(p.is_strict());
    }
}
